#!/usr/bin/env bash
# Benchmark regression gate (serving + kernels + overload + scale).
#
# The artifact kind is auto-detected: a JSON carrying a top-level "kernels"
# block (produced by bench_kernels) is gated per kernel — each
# (kernel, variant) present in BOTH baseline and candidate must not lose
# more than SES_BENCH_MAX_REGRESSION of its GFLOP/s (pure data-movement
# kernels, declared GFLOP/s 0, are gated on GB/s instead). Kernels present
# on only one side are reported but never fail the gate, so adding or
# renaming a kernel does not require a lockstep baseline update.
#
# A JSON carrying "goodput_retention_10x" (produced by bench_overload) is
# gated on its own invariants, no baseline needed:
#   - unresolved_futures must be 0, overall and per sweep point — every
#     submitted request resolved with a typed status (no hung futures);
#   - every point's status tallies must sum to its submitted count;
#   - goodput_retention_10x (goodput at the deepest overload point over
#     goodput at 1x) must be at least SES_BENCH_MIN_OVERLOAD_RETENTION
#     (default 0.70). The retention check respects the load-average noise
#     guard below; the resolution invariants are enforced unconditionally
#     (a lost future is a bug at any load).
#
# A JSON carrying "bench": "scale" (produced by bench_scale) is gated on the
# million-node data-plane invariants:
#   - structural checks, unconditionally: every sweep point must report
#     parity_ok (sharded logits bitwise-equal to the whole-graph session),
#     an edge-cut fraction in [0, 1], balance >= 1, and a positive warm
#     predict p99; a full-profile artifact must include a >= 1M-node point
#     (the committed BENCH_scale.json always does);
#   - perf comparison against the committed BENCH_scale.json, per matching
#     base_nodes point: warm-predict p99 and train-epoch time must not rise
#     by more than SES_BENCH_MAX_SCALE_REGRESSION (default 0.50 — these are
#     sub-microsecond / scheduler-bound numbers, wider than the kernel gate
#     on purpose), and the edge-cut fraction must not rise by more than
#     0.05 absolute (the partitioner is deterministic; a rise means the
#     algorithm changed, not noise). Smoke-profile artifacts skip the perf
#     comparison (sanitizer builds measure nothing).
#
# Everything else is treated as a bench_serving artifact and compared
# against the committed baseline (BENCH_serving.json at the repo root),
# failing when
#   - warm-predict throughput (1000 / single_thread.warm_predict_ms, i.e.
#     QPS of the memoized fast path) drops by more than the allowed fraction,
#   - or the multi-threaded serving p99 latency rises by more than it,
#   - or the scheduler's open-loop speedup over the direct path falls below
#     SES_BENCH_MIN_SCHED_SPEEDUP (default 2.0; skipped when either JSON
#     predates the scheduler block),
#   - or the candidate's scheduler block lacks the per-stage critical-path
#     histograms ("stages" with admit/seal/queue/forward/resolve) — request
#     forensics regressed out of bench_serving. Baselines predating the
#     stages block are tolerated; candidates are not.
#
# A missing candidate or a schema mismatch fails with a one-line diagnosis
# instead of a JSON traceback; a missing committed BASELINE skips the gate
# with a notice (a newly added BENCH_*.json kind has no counterpart yet). When the machine was already busy before the benchmark
# ran (pre-bench 1-minute load average, as captured by `scripts/ci.sh bench`
# in SES_BENCH_PRELOAD, above SES_BENCH_MAX_LOAD x nproc), the gate prints a
# warning and exits 0 — a loaded box cannot distinguish a regression from
# scheduler noise, and a false FAIL would teach people to ignore the gate.
#
# Usage: scripts/bench_check.sh CANDIDATE.json [BASELINE.json]
#   SES_BENCH_MAX_REGRESSION      allowed fractional regression (default 0.20)
#   SES_BENCH_MIN_SCHED_SPEEDUP   open-loop sched/direct floor (default 2.0)
#   SES_BENCH_MIN_SPMM_SPEEDUP    SIMD-vs-scalar SpMM GFLOP/s floor (1.5)
#   SES_BENCH_MIN_OVERLOAD_RETENTION  10x/1x goodput floor (default 0.70)
#   SES_BENCH_MAX_SCALE_REGRESSION    scale-point latency rise (default 0.50)
#   SES_BENCH_MAX_LOAD            per-core pre-bench load ceiling (default 0.8)
#   SES_BENCH_PRELOAD             pre-bench 1-min loadavg (set by ci.sh)
#
# Micro-benchmarks on a shared box are noisy; 20% is wide enough to ignore
# scheduler jitter while still catching a real fast-path regression (those
# historically show up as 2-10x, not 1.2x).
set -euo pipefail

CANDIDATE="${1:?usage: scripts/bench_check.sh CANDIDATE.json [BASELINE.json]}"

# Overload artifacts (bench_overload) gate on their own invariants — the
# retention ratio is measured within one run on one machine, so no committed
# baseline is involved. Handled before the baseline logic entirely.
if [[ -f "${CANDIDATE}" ]] && grep -q '"goodput_retention_10x"' "${CANDIDATE}" 2>/dev/null; then
  MIN_RETENTION="${SES_BENCH_MIN_OVERLOAD_RETENTION:-0.70}"
  MAX_LOAD="${SES_BENCH_MAX_LOAD:-0.8}"
  PRELOAD="${SES_BENCH_PRELOAD:-}"
  SKIP_RETENTION=0
  if [[ -n "${PRELOAD}" ]]; then
    NCPU="$(nproc 2>/dev/null || echo 1)"
    if python3 -c "import sys; sys.exit(0 if float('${PRELOAD}') > float('${MAX_LOAD}') * ${NCPU} else 1)"; then
      echo "OVERLOAD RETENTION CHECK SKIPPED: pre-bench load average" \
           "${PRELOAD} exceeds ${MAX_LOAD} x ${NCPU} cores (resolution" \
           "invariants still enforced)."
      SKIP_RETENTION=1
    fi
  fi
  python3 - "${CANDIDATE}" "${MIN_RETENTION}" "${SKIP_RETENTION}" <<'PY'
import json
import sys

path, min_retention, skip_retention = \
    sys.argv[1], float(sys.argv[2]), sys.argv[3] == "1"

try:
    with open(path) as f:
        doc = json.load(f)
except json.JSONDecodeError as e:
    sys.exit(f"BENCH GATE FAIL: {path} is not valid JSON "
             f"(line {e.lineno}: {e.msg}). Was the benchmark interrupted?")

failures = []
points = doc.get("points")
if not isinstance(points, list) or not points:
    sys.exit(f"BENCH GATE FAIL: {path} has no sweep points.")
for p in points:
    resolved = (p["ok"] + p["shed"] + p["expired"] + p["shutdown"]
                + p["internal"])
    print(f"  {p['offered_x']:>5}x offered: submitted {p['submitted']} "
          f"ok {p['ok']} shed {p['shed']} expired {p['expired']} "
          f"internal {p['internal']} unresolved {p['unresolved_futures']} "
          f"goodput {p['goodput_qps']:,.0f} qps p99 {p['p99_ms']:.2f} ms")
    if p["unresolved_futures"] != 0:
        failures.append(f"{p['offered_x']}x point left "
                        f"{p['unresolved_futures']} futures unresolved")
    if resolved != p["submitted"]:
        failures.append(f"{p['offered_x']}x point: {resolved} typed "
                        f"resolutions for {p['submitted']} submissions")
if doc["unresolved_futures"] != 0:
    failures.append(f"{doc['unresolved_futures']} unresolved futures overall")
retention = doc["goodput_retention_10x"]
print(f"goodput retention at {doc.get('max_offered_x', 10)}x: "
      f"{retention:.1%} (floor {min_retention:.0%})")
if retention < min_retention and not skip_retention:
    failures.append(f"goodput retention {retention:.1%} fell below the "
                    f"{min_retention:.0%} floor")

if failures:
    for f in failures:
        print(f"BENCH GATE FAIL: {f}", file=sys.stderr)
    sys.exit(1)
print("overload bench gate passed")
PY
  exit $?
fi

# Scale artifacts (bench_scale): structural invariants always, perf compared
# against the committed BENCH_scale.json when one exists and the candidate
# is not a smoke/sanitizer run.
if [[ -f "${CANDIDATE}" ]] && grep -q '"bench": "scale"' "${CANDIDATE}" 2>/dev/null; then
  SCALE_BASELINE="${2:-$(dirname "$0")/../BENCH_scale.json}"
  MAX_SCALE_REGRESSION="${SES_BENCH_MAX_SCALE_REGRESSION:-0.50}"
  MAX_LOAD="${SES_BENCH_MAX_LOAD:-0.8}"
  PRELOAD="${SES_BENCH_PRELOAD:-}"
  SKIP_PERF=0
  if [[ ! -f "${SCALE_BASELINE}" ]]; then
    echo "SCALE PERF COMPARISON SKIPPED: no committed baseline at" \
         "${SCALE_BASELINE} (newly added benchmark? commit one with" \
         "./build/bench/bench_scale --out=BENCH_scale.json)." \
         "Structural checks still enforced."
    SKIP_PERF=1
    SCALE_BASELINE=""
  fi
  if [[ -n "${PRELOAD}" ]]; then
    NCPU="$(nproc 2>/dev/null || echo 1)"
    if python3 -c "import sys; sys.exit(0 if float('${PRELOAD}') > float('${MAX_LOAD}') * ${NCPU} else 1)"; then
      echo "SCALE PERF COMPARISON SKIPPED: pre-bench load average" \
           "${PRELOAD} exceeds ${MAX_LOAD} x ${NCPU} cores (structural" \
           "checks still enforced)."
      SKIP_PERF=1
    fi
  fi
  python3 - "${CANDIDATE}" "${SCALE_BASELINE}" "${MAX_SCALE_REGRESSION}" \
      "${SKIP_PERF}" <<'PY'
import json
import sys

cand_path, base_path = sys.argv[1], sys.argv[2]
allowed, skip_perf = float(sys.argv[3]), sys.argv[4] == "1"
MAX_CUT_RISE = 0.05  # absolute; the partitioner is deterministic

try:
    with open(cand_path) as f:
        cand = json.load(f)
except json.JSONDecodeError as e:
    sys.exit(f"BENCH GATE FAIL: {cand_path} is not valid JSON "
             f"(line {e.lineno}: {e.msg}). Was the benchmark interrupted?")

failures = []
points = cand.get("points")
if not isinstance(points, list) or not points:
    sys.exit(f"BENCH GATE FAIL: {cand_path} has no sweep points.")
for p in points:
    try:
        label = f"{p['nodes']}-node point"
        print(f"  {p['nodes']:>9} nodes ({p['edges']} edges): "
              f"cut {p['edge_cut_fraction']:.3f} balance {p['balance']:.3f} "
              f"halo {p['halo_fraction']:.2f} | train "
              f"{p['train_epoch_ms']:.1f} ms/epoch | warm p99 "
              f"{p['warm_predict_p99_us']:.1f} us | parity "
              f"{'OK' if p['parity_ok'] else 'BROKEN'}")
        if not p["parity_ok"]:
            failures.append(f"{label}: sharded logits are NOT bitwise-equal "
                            f"to the whole-graph session's")
        if not 0.0 <= p["edge_cut_fraction"] <= 1.0:
            failures.append(f"{label}: edge_cut_fraction "
                            f"{p['edge_cut_fraction']} outside [0, 1]")
        if p["balance"] < 1.0:
            failures.append(f"{label}: balance {p['balance']} below 1")
        if p["warm_predict_p99_us"] <= 0:
            failures.append(f"{label}: non-positive warm-predict p99")
        if p["nodes"] <= 0 or p["edges"] <= 0:
            failures.append(f"{label}: empty graph")
    except KeyError as e:
        sys.exit(f"BENCH GATE FAIL: {cand_path} sweep point lacks {e} — "
                 f"the bench_scale schema changed; regenerate the baseline.")
if not cand.get("all_parity_ok", False):
    failures.append("all_parity_ok is not true")
if cand.get("profile") == "full":
    biggest = max(p["nodes"] for p in points)
    if biggest < 1_000_000:
        failures.append(f"full-profile artifact tops out at {biggest} nodes; "
                        f"the sweep must include a >= 1M-node point")

if skip_perf or cand.get("profile") == "smoke":
    if not skip_perf:
        print("smoke profile: perf comparison skipped (structural only)")
elif base_path:
    with open(base_path) as f:
        base = json.load(f)
    base_by_nodes = {p["base_nodes"]: p for p in base.get("points", [])}
    matched = 0
    for p in points:
        b = base_by_nodes.get(p["base_nodes"])
        if b is None:
            print(f"  {p['base_nodes']}-base-node point has no baseline "
                  f"counterpart (not gated)")
            continue
        matched += 1
        for field, name in (("warm_predict_p99_us", "warm-predict p99"),
                            ("train_epoch_ms", "train epoch time")):
            rise = 0.0 if b[field] <= 0 else (p[field] - b[field]) / b[field]
            print(f"  {p['base_nodes']:>9}: {name} baseline {b[field]:.2f} "
                  f"candidate {p[field]:.2f} rise {rise:+.1%} "
                  f"(allowed {allowed:.0%})")
            if rise > allowed:
                failures.append(f"{p['base_nodes']}-node {name} rose "
                                f"{rise:.1%} (> {allowed:.0%})")
        cut_rise = p["edge_cut_fraction"] - b["edge_cut_fraction"]
        if cut_rise > MAX_CUT_RISE:
            failures.append(
                f"{p['base_nodes']}-node edge-cut fraction rose "
                f"{cut_rise:+.3f} (> {MAX_CUT_RISE}) — partition quality "
                f"regressed")
    if matched == 0:
        print("no baseline point matches the candidate sweep; perf gate "
              "vacuous")

if failures:
    for f in failures:
        print(f"BENCH GATE FAIL: {f}", file=sys.stderr)
    sys.exit(1)
print("scale bench gate passed")
PY
  exit $?
fi

# Default baseline matches the candidate kind: kernel artifacts gate against
# BENCH_kernels.json, anything else against BENCH_serving.json.
if [[ -z "${2:-}" ]] && grep -q '"kernels"' "${CANDIDATE}" 2>/dev/null; then
  BASELINE="$(dirname "$0")/../BENCH_kernels.json"
else
  BASELINE="${2:-$(dirname "$0")/../BENCH_serving.json}"
fi
MAX_REGRESSION="${SES_BENCH_MAX_REGRESSION:-0.20}"
MIN_SCHED_SPEEDUP="${SES_BENCH_MIN_SCHED_SPEEDUP:-2.0}"
MIN_SPMM_SPEEDUP="${SES_BENCH_MIN_SPMM_SPEEDUP:-1.5}"
MAX_LOAD="${SES_BENCH_MAX_LOAD:-0.8}"
PRELOAD="${SES_BENCH_PRELOAD:-}"

if [[ ! -f "${CANDIDATE}" ]]; then
  echo "BENCH GATE FAIL: ${CANDIDATE} does not exist." >&2
  echo "  Run the serving benchmark first (scripts/ci.sh bench does)." >&2
  exit 1
fi
# A missing BASELINE is not a failure: a newly added BENCH_*.json kind has
# no committed counterpart on its first run, and hard-failing here would
# force people to commit a baseline before the benchmark that produces it
# exists. Skip with a visible notice telling them how to create one.
if [[ ! -f "${BASELINE}" ]]; then
  echo "BENCH GATE SKIPPED: no committed baseline at ${BASELINE}" \
       "(newly added benchmark kind?). Produce one with:"
  echo "  ./build/bench/bench_serving --out=$(basename "${BASELINE}")"
  echo "and commit it to enable regression gating."
  exit 0
fi

# Noise guard: the load average BEFORE the benchmark started tells us whether
# something else was competing for the cores during the measurement.
if [[ -n "${PRELOAD}" ]]; then
  NCPU="$(nproc 2>/dev/null || echo 1)"
  if python3 -c "import sys; sys.exit(0 if float('${PRELOAD}') > float('${MAX_LOAD}') * ${NCPU} else 1)"; then
    echo "BENCH GATE SKIPPED: pre-bench load average ${PRELOAD} exceeds" \
         "${MAX_LOAD} x ${NCPU} cores — this machine is too busy for the" \
         "numbers to mean anything. Re-run on a quiet box to enforce the gate."
    exit 0
  fi
fi

python3 - "$BASELINE" "$CANDIDATE" "$MAX_REGRESSION" "$MIN_SCHED_SPEEDUP" "$MIN_SPMM_SPEEDUP" <<'PY'
import json
import sys

baseline_path, candidate_path = sys.argv[1], sys.argv[2]
allowed, min_sched = float(sys.argv[3]), float(sys.argv[4])
min_spmm_speedup = float(sys.argv[5])


def load(path, role):
    try:
        with open(path) as f:
            return json.load(f)
    except json.JSONDecodeError as e:
        sys.exit(f"BENCH GATE FAIL: {role} {path} is not valid JSON "
                 f"(line {e.lineno}: {e.msg}). Was the benchmark interrupted?")


def lookup(doc, path, role, src):
    node = doc
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            sys.exit(f"BENCH GATE FAIL: {role} {src} has no '{path}' "
                     f"(missing '{key}'). The bench_serving schema changed — "
                     f"regenerate the baseline with "
                     f"./build/bench/bench_serving --out=BENCH_serving.json")
        node = node[key]
    if not isinstance(node, (int, float)):
        sys.exit(f"BENCH GATE FAIL: {role} {src} field '{path}' is "
                 f"{type(node).__name__}, expected a number.")
    return float(node)


base = load(baseline_path, "baseline")
cand = load(candidate_path, "candidate")

failures = []

# ---------------------------------------------------------------------------
# Kernel-observatory gate: per-(kernel, variant) GFLOP/s floor. Engaged only
# when BOTH documents carry the "kernels" block, so the gate stays inert
# against serving artifacts and pre-observatory baselines during bisection.
#
# Schema 2 variant labels carry the dispatched SIMD tier ("spmm|csr_avx2");
# comparison is like variant to like variant when both sides speak schema 2.
# Against a schema-1 baseline (pre-variant labels like "spmm|csr") each old
# entry is compared to the BEST candidate entry in its family — the candidate
# may legitimately have sped the kernel up by dispatching a wider tier, and a
# scalar-vs-scalar comparison is impossible when the baseline never recorded
# which tier it ran.
TIER_SUFFIXES = ("_scalar", "_avx2", "_avx512")


def family(name):
    """Strips the tier suffix: 'spmm|csr_avx2' -> 'spmm|csr'."""
    for suffix in TIER_SUFFIXES:
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


if "kernels" in cand or "kernels" in base:
    if "kernels" not in base or "kernels" not in cand:
        print("kernels block absent from baseline or candidate; kernel gate "
              "skipped")
        sys.exit(0)
    base_schema = int(base.get("schema_version", 1))
    cand_schema = int(cand.get("schema_version", 1))

    def metric_of(doc, name, role, src):
        # Pure data movement declares 0 FLOPs; gate its bandwidth instead.
        if lookup(doc, f"kernels.{name}.gflops", role, src) == 0:
            return "gbps"
        return "gflops"

    if base_schema >= 2 and cand_schema >= 2:
        pairs = [(n, n) for n in sorted(set(base["kernels"])
                                        & set(cand["kernels"]))]
        only_base = sorted(set(base["kernels"]) - set(cand["kernels"]))
        only_cand = sorted(set(cand["kernels"]) - set(base["kernels"]))
        if only_base:
            print("kernels only in baseline (not gated): "
                  + ", ".join(only_base))
        if only_cand:
            print("kernels only in candidate (not gated): "
                  + ", ".join(only_cand))
    else:
        # Best-of fallback for pre-variant baselines: old "spmm|csr" gates
        # against the best of "spmm|csr_{scalar,avx2,avx512}".
        print(f"baseline schema {base_schema} predates kernel variants; "
              f"comparing each baseline kernel to the candidate's best "
              f"variant in its family")
        by_family = {}
        for name in cand["kernels"]:
            by_family.setdefault(family(name), []).append(name)
        pairs = []
        for bname in sorted(base["kernels"]):
            members = by_family.get(family(bname), [])
            if not members:
                print(f"kernel {bname}: no candidate variant in its family "
                      f"(not gated)")
                continue
            metric = metric_of(base, bname, "baseline", baseline_path)
            best = max(members,
                       key=lambda n: lookup(cand, f"kernels.{n}.{metric}",
                                            "candidate", candidate_path))
            pairs.append((bname, best))

    for bname, cname in pairs:
        metric = metric_of(base, bname, "baseline", baseline_path)
        b = lookup(base, f"kernels.{bname}.{metric}", "baseline",
                   baseline_path)
        c = lookup(cand, f"kernels.{cname}.{metric}", "candidate",
                   candidate_path)
        drop = 0.0 if b <= 0 else (b - c) / b
        label = bname if bname == cname else f"{bname} -> {cname}"
        print(f"kernel {label}: baseline {b:.3f} candidate {c:.3f} {metric}  "
              f"drop {drop:+.1%} (allowed {allowed:.0%})")
        if drop > allowed:
            failures.append(
                f"kernel {label} {metric} dropped {drop:.1%} (> {allowed:.0%})")

    # SpMM SIMD speedup floor (schema 2 candidates): the per-variant sweep
    # must show the dispatched SIMD tiers actually beating the scalar
    # reference. Skipped with a log line when the host has no SIMD tier.
    if "spmm_simd_speedup" in cand:
        speedup = float(cand["spmm_simd_speedup"])
        if speedup <= 0.0:
            print("spmm SIMD speedup: no SIMD tier on this host; floor "
                  "skipped")
        else:
            print(f"spmm SIMD speedup: {speedup:.2f}x "
                  f"(floor {min_spmm_speedup:.1f}x)")
            if speedup < min_spmm_speedup:
                failures.append(
                    f"spmm SIMD speedup {speedup:.2f}x fell below the "
                    f"{min_spmm_speedup:.1f}x floor")
    if failures:
        for f in failures:
            print(f"BENCH GATE FAIL: {f}", file=sys.stderr)
        sys.exit(1)
    print("kernel bench gate passed")
    sys.exit(0)


def warm_qps(doc, role, src):
    ms = lookup(doc, "single_thread.warm_predict_ms", role, src)
    return 1000.0 / ms if ms > 0 else float("inf")


base_qps = warm_qps(base, "baseline", baseline_path)
cand_qps = warm_qps(cand, "candidate", candidate_path)
qps_drop = 0.0 if base_qps <= 0 else (base_qps - cand_qps) / base_qps
print(f"warm-predict QPS: baseline {base_qps:,.0f}  candidate {cand_qps:,.0f}  "
      f"drop {qps_drop:+.1%} (allowed {allowed:.0%})")
if qps_drop > allowed:
    failures.append(f"warm-predict QPS dropped {qps_drop:.1%} (> {allowed:.0%})")

base_p99 = lookup(base, "serving.p99_ms", "baseline", baseline_path)
cand_p99 = lookup(cand, "serving.p99_ms", "candidate", candidate_path)
p99_rise = 0.0 if base_p99 <= 0 else (cand_p99 - base_p99) / base_p99
print(f"serving p99: baseline {base_p99:.6f} ms  candidate {cand_p99:.6f} ms  "
      f"rise {p99_rise:+.1%} (allowed {allowed:.0%})")
if p99_rise > allowed:
    failures.append(f"serving p99 rose {p99_rise:.1%} (> {allowed:.0%})")

# Scheduler gate: only enforced when both sides carry the scheduler block, so
# the gate still works against pre-scheduler baselines during bisection.
if "scheduler" in base and "scheduler" in cand:
    speedup = lookup(cand, "scheduler.open_loop.speedup_vs_direct",
                     "candidate", candidate_path)
    print(f"scheduler open-loop speedup: {speedup:.2f}x "
          f"(floor {min_sched:.1f}x)")
    if speedup < min_sched:
        failures.append(
            f"scheduler open-loop speedup {speedup:.2f}x fell below the "
            f"{min_sched:.1f}x floor")
else:
    print("scheduler block absent from baseline or candidate; speedup gate "
          "skipped")

# Request-forensics gate: a candidate that carries a scheduler block must
# also carry the per-stage histograms (the stages block is how a p99
# regression gets attributed to queue vs forward time). Only the candidate
# is gated — a baseline from before the forensics work stays comparable.
REQUIRED_STAGES = ("admit", "seal", "queue", "forward", "resolve")
if "scheduler" in cand:
    stages = cand["scheduler"].get("stages")
    if not isinstance(stages, dict):
        failures.append(
            "candidate scheduler block lacks 'stages' — the request-"
            "forensics stage histograms are missing from bench_serving "
            "output")
    else:
        missing = [s for s in REQUIRED_STAGES if s not in stages]
        if missing:
            failures.append(
                f"scheduler.stages missing {missing} — partial stage "
                f"attribution")
        else:
            print("stage attribution: " + "  ".join(
                f"{s} p99 {lookup(cand, f'scheduler.stages.{s}.p99_us', 'candidate', candidate_path):.1f}us"
                for s in REQUIRED_STAGES))

if failures:
    for f in failures:
        print(f"BENCH GATE FAIL: {f}", file=sys.stderr)
    sys.exit(1)
print("bench gate passed")
PY
