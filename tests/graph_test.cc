#include <gtest/gtest.h>
#include <cmath>

#include <set>

#include "data/synthetic.h"
#include "graph/graph.h"
#include "graph/khop.h"
#include "graph/sampling.h"

namespace g = ses::graph;

namespace {

g::Graph MakePath(int64_t n) {
  std::vector<std::pair<int64_t, int64_t>> edges;
  for (int64_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return g::Graph::FromUndirectedEdges(n, edges);
}

TEST(GraphTest, DedupsAndDropsSelfLoops) {
  g::Graph graph = g::Graph::FromUndirectedEdges(
      4, {{0, 1}, {1, 0}, {0, 1}, {2, 2}, {2, 3}});
  EXPECT_EQ(graph.num_edges(), 2);
  EXPECT_TRUE(graph.HasEdge(0, 1));
  EXPECT_TRUE(graph.HasEdge(3, 2));
  EXPECT_FALSE(graph.HasEdge(2, 2));
  EXPECT_FALSE(graph.HasEdge(0, 3));
}

TEST(GraphTest, NeighborsSortedAndSymmetric) {
  g::Graph graph = g::Graph::FromUndirectedEdges(5, {{3, 1}, {3, 0}, {3, 4}});
  auto nbrs = graph.Neighbors(3);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0);
  EXPECT_EQ(nbrs[1], 1);
  EXPECT_EQ(nbrs[2], 4);
  EXPECT_EQ(graph.Degree(0), 1);
  EXPECT_EQ(graph.Neighbors(0)[0], 3);
}

TEST(GraphTest, DirectedEdgesLayout) {
  g::Graph graph = g::Graph::FromUndirectedEdges(3, {{0, 1}, {1, 2}});
  auto directed = graph.DirectedEdges(/*add_self_loops=*/true);
  // 2 undirected edges -> 4 directed + 3 self-loops.
  EXPECT_EQ(directed->size(), 7);
  // Both orientations of undirected edge i sit at 2i, 2i+1.
  EXPECT_EQ(directed->src[0], graph.edges()[0].first);
  EXPECT_EQ(directed->dst[0], graph.edges()[0].second);
  EXPECT_EQ(directed->src[1], graph.edges()[0].second);
  EXPECT_EQ(directed->dst[1], graph.edges()[0].first);
  // Self-loops at the tail.
  for (int64_t e = 4; e < 7; ++e) EXPECT_EQ(directed->src[e], directed->dst[e]);
}

TEST(GraphTest, GcnWeightsSymmetricNormalization) {
  g::Graph graph = MakePath(3);
  auto edges = graph.DirectedEdges(true);
  auto weights = g::Graph::GcnNormWeights(*edges);
  // Node 1 has degree 3 (2 neighbors + self-loop); ends have degree 2.
  for (int64_t e = 0; e < edges->size(); ++e) {
    const int64_t du = edges->src[e] == 1 ? 3 : 2;
    const int64_t dv = edges->dst[e] == 1 ? 3 : 2;
    EXPECT_NEAR(weights[e], 1.0 / std::sqrt(double(du * dv)), 1e-6);
  }
}

TEST(GraphTest, JaccardSimilarity) {
  // 0 and 1 share neighbor 2; 0 also has 3, 1 also has 4.
  g::Graph graph = g::Graph::FromUndirectedEdges(
      5, {{0, 2}, {0, 3}, {1, 2}, {1, 4}});
  EXPECT_NEAR(graph.NeighborhoodJaccard(0, 1), 1.0 / 3.0, 1e-6);
  EXPECT_FLOAT_EQ(graph.NeighborhoodJaccard(3, 4), 0.0f);
}

TEST(GraphTest, WithExtraEdges) {
  g::Graph graph = MakePath(4);
  g::Graph bigger = graph.WithExtraEdges({{0, 3}});
  EXPECT_EQ(bigger.num_edges(), graph.num_edges() + 1);
  EXPECT_TRUE(bigger.HasEdge(0, 3));
}

TEST(EgoNetTest, ContainsExactlyTheBall) {
  g::Graph graph = MakePath(7);
  g::Subgraph sub = g::ExtractEgoNet(graph, 3, 2);
  std::set<int64_t> expect{1, 2, 3, 4, 5};
  EXPECT_EQ(std::set<int64_t>(sub.nodes.begin(), sub.nodes.end()), expect);
  EXPECT_EQ(sub.nodes[static_cast<size_t>(sub.center_local)], 3);
  // Induced path of 5 nodes has 4 edges.
  EXPECT_EQ(sub.graph.num_edges(), 4);
}

TEST(EgoNetTest, LocalIdsConsistent) {
  ses::util::Rng rng(3);
  g::Graph graph = ses::data::MakeBarabasiAlbert(80, 3, &rng);
  g::Subgraph sub = g::ExtractEgoNet(graph, 10, 2);
  for (size_t i = 0; i < sub.nodes.size(); ++i)
    EXPECT_EQ(sub.local_of[static_cast<size_t>(sub.nodes[i])],
              static_cast<int64_t>(i));
  // Every subgraph edge exists in the parent graph.
  for (auto [lu, lv] : sub.graph.edges())
    EXPECT_TRUE(graph.HasEdge(sub.nodes[static_cast<size_t>(lu)],
                              sub.nodes[static_cast<size_t>(lv)]));
}

// --- k-hop properties, parameterized over k ---------------------------------

class KHopTest : public ::testing::TestWithParam<int> {};

TEST_P(KHopTest, PathGraphBallSizes) {
  const int k = GetParam();
  g::Graph graph = MakePath(11);
  g::KHopAdjacency khop(graph, k);
  // Middle node 5 reaches min(k, 5) in each direction.
  EXPECT_EQ(khop.Neighbors(5).size(), static_cast<size_t>(2 * k));
  // End node 0 reaches k nodes.
  EXPECT_EQ(khop.Neighbors(0).size(), static_cast<size_t>(k));
}

TEST_P(KHopTest, ContainsOneHopNeighbors) {
  const int k = GetParam();
  ses::util::Rng rng(4);
  g::Graph graph = ses::data::MakeBarabasiAlbert(60, 3, &rng);
  g::KHopAdjacency khop(graph, k);
  for (int64_t v = 0; v < graph.num_nodes(); ++v)
    for (int64_t nbr : graph.Neighbors(v))
      EXPECT_TRUE(khop.Contains(v, nbr));
}

TEST_P(KHopTest, NeverContainsSelf) {
  const int k = GetParam();
  ses::util::Rng rng(5);
  g::Graph graph = ses::data::MakeBarabasiAlbert(40, 2, &rng);
  g::KHopAdjacency khop(graph, k);
  for (int64_t v = 0; v < graph.num_nodes(); ++v)
    EXPECT_FALSE(khop.Contains(v, v));
}

TEST_P(KHopTest, PairEdgesAlignWithNeighborLists) {
  const int k = GetParam();
  ses::util::Rng rng(6);
  g::Graph graph = ses::data::MakeBarabasiAlbert(50, 2, &rng);
  g::KHopAdjacency khop(graph, k);
  auto pairs = khop.PairEdges();
  EXPECT_EQ(pairs->size(), khop.num_pairs());
  for (int64_t v = 0; v < graph.num_nodes(); ++v) {
    auto nbrs = khop.Neighbors(v);
    const int64_t offset = khop.PairOffset(v);
    for (size_t j = 0; j < nbrs.size(); ++j) {
      EXPECT_EQ(pairs->src[static_cast<size_t>(offset) + j], v);
      EXPECT_EQ(pairs->dst[static_cast<size_t>(offset) + j], nbrs[j]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Hops, KHopTest, ::testing::Values(1, 2, 3));

TEST(KHopTest, MonotoneInK) {
  ses::util::Rng rng(7);
  g::Graph graph = ses::data::MakeBarabasiAlbert(60, 2, &rng);
  g::KHopAdjacency k1(graph, 1), k2(graph, 2), k3(graph, 3);
  EXPECT_LE(k1.num_pairs(), k2.num_pairs());
  EXPECT_LE(k2.num_pairs(), k3.num_pairs());
}

TEST(KHopTest, MaxNeighborsCapRespected) {
  ses::util::Rng rng(8);
  g::Graph graph = ses::data::MakeBarabasiAlbert(100, 5, &rng);
  g::KHopAdjacency capped(graph, 2, /*max_neighbors=*/10);
  for (int64_t v = 0; v < graph.num_nodes(); ++v)
    EXPECT_LE(capped.Neighbors(v).size(), 10u);
}

TEST(NegativeSamplingTest, DisjointFromKHopBall) {
  ses::util::Rng rng(9);
  g::Graph graph = ses::data::MakeBarabasiAlbert(80, 2, &rng);
  g::KHopAdjacency khop(graph, 2);
  std::vector<int64_t> labels(80);
  for (auto& l : labels) l = static_cast<int64_t>(rng.UniformInt(3));
  auto negs = g::SampleNegativeSets(khop, labels, &rng);
  for (int64_t v = 0; v < graph.num_nodes(); ++v) {
    EXPECT_EQ(negs.Of(v).size(), khop.Neighbors(v).size());
    for (int64_t neg : negs.Of(v)) {
      EXPECT_NE(neg, v);
      EXPECT_FALSE(khop.Contains(v, neg));
    }
  }
}

TEST(NegativeSamplingTest, RespectsExplicitCounts) {
  ses::util::Rng rng(10);
  g::Graph graph = ses::data::MakeBarabasiAlbert(50, 2, &rng);
  g::KHopAdjacency khop(graph, 1);
  std::vector<int64_t> counts(50, 3);
  auto negs = g::SampleNegativeSets(khop, {}, &rng, counts);
  for (int64_t v = 0; v < 50; ++v) EXPECT_EQ(negs.Of(v).size(), 3u);
}

}  // namespace
