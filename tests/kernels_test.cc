// Tests for the runtime-dispatched SIMD kernel layer (src/kernels):
//  - tier dispatch + SES_KERNEL_VARIANT forcing semantics,
//  - SIMD/scalar parity sweeps across every dispatched variant (feature
//    widths 1..333 including ragged SIMD tails, empty rows, duplicate
//    edges, denormals, NaN masking/propagation),
//  - the fused GCN epilogue (aggregate + bias + ReLU) against the unfused
//    chain — bitwise at scalar tier, tolerance-gated at SIMD tiers,
//  - SpMMBiasAct gradients (analytic vs the unfused chain, plus numeric),
//  - autotuner determinism and per-graph plan memoization.
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "autograd/sparse_ops.h"
#include "data/synthetic.h"
#include "kernels/dispatch.h"
#include "kernels/spmm.h"
#include "models/encoders.h"
#include "models/node_classifier.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace {

using namespace ses;
namespace ag = ses::autograd;
namespace t = ses::tensor;
namespace k = ses::kernels;

/// Feature widths the parity sweeps cover: scalar, sub-lane, one AVX2 lane,
/// one AVX-512 lane, lane+1 (ragged tail), a typical hidden width, and a
/// large non-multiple-of-16 width.
const std::vector<int64_t> kWidths = {1, 3, 8, 16, 17, 64, 333};

std::vector<k::SimdTier> SupportedTiers() {
  std::vector<k::SimdTier> tiers;
  for (int i = 0; i < k::kNumSimdTiers; ++i) {
    const auto tier = static_cast<k::SimdTier>(i);
    if (k::TierSupported(tier)) tiers.push_back(tier);
  }
  return tiers;
}

/// Max |a - b| with NaN-position agreement: a NaN in one buffer requires a
/// NaN at the same position in the other.
double MaxAbsDiff(const float* a, const float* b, int64_t n) {
  double m = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    if (std::isnan(a[i]) || std::isnan(b[i])) {
      if (std::isnan(a[i]) != std::isnan(b[i])) return 1e30;
      continue;
    }
    m = std::max(m, static_cast<double>(std::fabs(a[i] - b[i])));
  }
  return m;
}

bool BitwiseEqual(const float* a, const float* b, int64_t n) {
  return std::memcmp(a, b, static_cast<size_t>(n) * sizeof(float)) == 0;
}

/// Relative tolerance for SIMD-vs-scalar parity: FMA contraction and
/// reassociated adds differ by a few ulps per accumulation step.
double Tolerance(int64_t reduction_len) {
  return 1e-5 * std::max<double>(1.0, std::sqrt(static_cast<double>(
                                     std::max<int64_t>(reduction_len, 1))));
}

/// A messy test graph: duplicate edges, a self loop, zero in-degree nodes
/// (empty CSR rows), one high-degree hub (skew), deterministic RNG.
struct TestGraph {
  std::vector<int64_t> src, dst;
  int64_t nodes = 0;
};

TestGraph MakeMessyGraph(int64_t nodes, int64_t edges, uint64_t seed) {
  TestGraph g;
  g.nodes = nodes;
  util::Rng rng(seed);
  for (int64_t e = 0; e < edges; ++e) {
    // Nodes 0 and 1 never receive edges -> empty rows; node 2 is a hub.
    int64_t d = 2 + static_cast<int64_t>(rng.Uniform() *
                                         static_cast<double>(nodes - 2));
    if (rng.Uniform() < 0.3) d = 2;  // hub: skewed in-degree
    const int64_t s =
        static_cast<int64_t>(rng.Uniform() * static_cast<double>(nodes));
    g.src.push_back(std::min(s, nodes - 1));
    g.dst.push_back(std::min(d, nodes - 1));
  }
  // Duplicate edge + self loop, deliberately.
  g.src.push_back(g.src[0]);
  g.dst.push_back(g.dst[0]);
  g.src.push_back(3 % nodes);
  g.dst.push_back(3 % nodes);
  return g;
}

/// Scalar edge-order reference SpMM with optional epilogue — the ground
/// truth every dispatched variant is compared against.
void ReferenceSpmm(const TestGraph& g, const float* w, const float* x,
                   int64_t f, float* out, const float* bias, bool relu) {
  std::fill(out, out + g.nodes * f, 0.0f);
  for (size_t e = 0; e < g.src.size(); ++e) {
    const float we = w[e];
    if (we == 0.0f) continue;
    const float* srcp = x + g.src[e] * f;
    float* dstp = out + g.dst[e] * f;
    for (int64_t c = 0; c < f; ++c) dstp[c] += we * srcp[c];
  }
  for (int64_t r = 0; r < g.nodes; ++r) {
    float* row = out + r * f;
    for (int64_t c = 0; c < f; ++c) {
      if (bias != nullptr) row[c] += bias[c];
      if (relu) row[c] = row[c] > 0.0f ? row[c] : 0.0f;
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch basics.

TEST(DispatchTest, ScalarTierAlwaysSupportedAndActiveTierValid) {
  EXPECT_TRUE(k::TierSupported(k::SimdTier::kScalar));
  EXPECT_TRUE(k::DispatchFor(k::SimdTier::kScalar).compiled);
  const k::SimdTier active = k::ActiveTier();
  EXPECT_TRUE(k::TierSupported(active));
  EXPECT_EQ(k::GetDispatch().tier, active);
  // Best tier dominates: active is never above it.
  EXPECT_LE(static_cast<int>(active), static_cast<int>(k::BestSupportedTier()));
}

TEST(DispatchTest, ForcedVariantSelectsTierAndBadValuesFallBack) {
  // Forcing scalar always works.
  ::setenv("SES_KERNEL_VARIANT", "scalar", 1);
  k::ResetActiveTierForTest();
  EXPECT_EQ(k::ActiveTier(), k::SimdTier::kScalar);
  // Unknown value falls back to the best supported tier (logged, not fatal).
  ::setenv("SES_KERNEL_VARIANT", "quantum", 1);
  k::ResetActiveTierForTest();
  EXPECT_EQ(k::ActiveTier(), k::BestSupportedTier());
  // Forcing an unsupported tier falls back likewise.
  if (!k::TierSupported(k::SimdTier::kAvx512)) {
    ::setenv("SES_KERNEL_VARIANT", "avx512", 1);
    k::ResetActiveTierForTest();
    EXPECT_EQ(k::ActiveTier(), k::BestSupportedTier());
  }
  ::unsetenv("SES_KERNEL_VARIANT");
  k::ResetActiveTierForTest();
}

TEST(DispatchTest, VariantLabelsCarryTierSuffix) {
  for (const k::SimdTier tier : SupportedTiers()) {
    const k::Dispatch& d = k::DispatchFor(tier);
    const std::string suffix = k::TierName(tier);
    EXPECT_NE(std::string(d.matmul_variant).find(suffix), std::string::npos);
    EXPECT_NE(std::string(d.unary_variant).find(suffix), std::string::npos);
    EXPECT_NE(
        std::string(k::SpmmVariantName({k::SpmmAlgo::kCsr, tier})).find(suffix),
        std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Element-wise / matmul parity across tiers.

TEST(KernelParityTest, ElementwiseVariantsMatchScalarAcrossWidths) {
  const k::Dispatch& ref = k::DispatchFor(k::SimdTier::kScalar);
  util::Rng rng(11);
  for (const k::SimdTier tier : SupportedTiers()) {
    const k::Dispatch& d = k::DispatchFor(tier);
    for (const int64_t n : kWidths) {
      t::Tensor a = t::Tensor::Randn(1, n, &rng);
      t::Tensor b = t::Tensor::Randn(1, n, &rng);
      a[0] = -0.0f;                       // signed zero through ReLU
      if (n > 1) a[1] = 1e-39f;           // denormal survives add/mul
      if (n > 2) b[2] = 0.0f;
      std::vector<float> got(n), want(n);
      d.vec_add(a.data(), b.data(), got.data(), n);
      ref.vec_add(a.data(), b.data(), want.data(), n);
      EXPECT_TRUE(BitwiseEqual(got.data(), want.data(), n))
          << k::TierName(tier) << " add width " << n;
      d.vec_sub(a.data(), b.data(), got.data(), n);
      ref.vec_sub(a.data(), b.data(), want.data(), n);
      EXPECT_TRUE(BitwiseEqual(got.data(), want.data(), n))
          << k::TierName(tier) << " sub width " << n;
      d.vec_mul(a.data(), b.data(), got.data(), n);
      ref.vec_mul(a.data(), b.data(), want.data(), n);
      EXPECT_TRUE(BitwiseEqual(got.data(), want.data(), n))
          << k::TierName(tier) << " mul width " << n;
      d.vec_relu(a.data(), got.data(), n);
      ref.vec_relu(a.data(), want.data(), n);
      EXPECT_TRUE(BitwiseEqual(got.data(), want.data(), n))
          << k::TierName(tier) << " relu width " << n;
    }
  }
}

TEST(KernelParityTest, ReluMapsNaNAndNegativeZeroToPositiveZero) {
  const float in[4] = {std::nanf(""), -0.0f, -1.0f, 2.5f};
  for (const k::SimdTier tier : SupportedTiers()) {
    float out[4] = {9, 9, 9, 9};
    k::DispatchFor(tier).vec_relu(in, out, 4);
    EXPECT_EQ(out[0], 0.0f) << k::TierName(tier) << ": NaN must map to 0";
    EXPECT_FALSE(std::signbit(out[0])) << k::TierName(tier);
    EXPECT_EQ(out[1], 0.0f) << k::TierName(tier);
    EXPECT_FALSE(std::signbit(out[1])) << k::TierName(tier) << ": -0 -> +0";
    EXPECT_EQ(out[2], 0.0f) << k::TierName(tier);
    EXPECT_EQ(out[3], 2.5f) << k::TierName(tier);
  }
}

TEST(KernelParityTest, MatMulVariantsMatchScalarWithinTolerance) {
  const k::Dispatch& ref = k::DispatchFor(k::SimdTier::kScalar);
  util::Rng rng(12);
  const int64_t m = 7, kk = 33;
  for (const k::SimdTier tier : SupportedTiers()) {
    const k::Dispatch& d = k::DispatchFor(tier);
    for (const int64_t n : kWidths) {
      t::Tensor a = t::Tensor::Randn(m, kk, &rng);
      t::Tensor b = t::Tensor::Randn(kk, n, &rng);
      a.At(2, 3) = 0.0f;  // exercise the zero-skip
      t::Tensor got = t::Tensor::Zeros(m, n), want = t::Tensor::Zeros(m, n);
      d.matmul(a.data(), b.data(), got.data(), m, kk, n);
      ref.matmul(a.data(), b.data(), want.data(), m, kk, n);
      const double tol = tier == k::SimdTier::kScalar ? 0.0 : Tolerance(kk);
      EXPECT_LE(MaxAbsDiff(got.data(), want.data(), m * n), tol)
          << k::TierName(tier) << " matmul n=" << n;
    }
  }
}

// ---------------------------------------------------------------------------
// SpMM parity: every (algo, tier) variant against the edge-order scalar
// reference, across all widths, with empty rows / duplicates / zero weights.

class SpmmParityTest : public ::testing::Test {
 protected:
  void RunSweep(bool with_epilogue) {
    const TestGraph g = MakeMessyGraph(/*nodes=*/53, /*edges=*/400, 7);
    const int64_t e = static_cast<int64_t>(g.src.size());
    util::Rng rng(21);
    t::Tensor w = t::Tensor::Randn(e, 1, &rng);
    w[0] = 0.0f;  // masked edges
    w[1] = 0.0f;
    w[2] = 1e-39f;  // denormal weight
    const k::SpmmPlan plan(g.src.data(), g.dst.data(), e, g.nodes);
    for (const int64_t f : kWidths) {
      t::Tensor x = t::Tensor::Randn(g.nodes, f, &rng);
      t::Tensor bias;
      const float* bias_ptr = nullptr;
      if (with_epilogue) {
        bias = t::Tensor::Randn(1, f, &rng);
        bias_ptr = bias.data();
      }
      std::vector<float> want(static_cast<size_t>(g.nodes) * f);
      ReferenceSpmm(g, w.data(), x.data(), f, want.data(), bias_ptr,
                    with_epilogue);
      for (const k::SimdTier tier : SupportedTiers()) {
        for (int a = 0; a < k::kNumSpmmAlgos; ++a) {
          const k::SpmmChoice choice{static_cast<k::SpmmAlgo>(a), tier};
          t::Tensor got = t::Tensor::Zeros(g.nodes, f);
          plan.Run(choice, w.data(), x.data(), f, got.data(), bias_ptr,
                   with_epilogue);
          // Scalar edge-order and scalar CSR (stable, edge-order entries)
          // are bitwise against the reference; everything else (FMA and/or
          // column-sorted reordering) is tolerance-gated.
          const bool bitwise = tier == k::SimdTier::kScalar &&
                               choice.algo != k::SpmmAlgo::kCsrBlocked;
          const double diff =
              MaxAbsDiff(got.data(), want.data(), g.nodes * f);
          if (bitwise) {
            EXPECT_TRUE(BitwiseEqual(got.data(), want.data(), g.nodes * f))
                << k::SpmmVariantName(choice) << " f=" << f
                << " diff=" << diff;
          } else {
            EXPECT_LE(diff, Tolerance(plan.stats().max_degree))
                << k::SpmmVariantName(choice) << " f=" << f;
          }
          // Empty rows stay exactly zero (or epilogue-only).
          for (int64_t c = 0; c < f; ++c) {
            float expect_empty = bias_ptr != nullptr ? bias[c] : 0.0f;
            if (with_epilogue && expect_empty < 0.0f) expect_empty = 0.0f;
            EXPECT_EQ(got.At(0, c), expect_empty)
                << k::SpmmVariantName(choice) << " empty row, f=" << f;
          }
        }
      }
    }
  }
};

TEST_F(SpmmParityTest, AllVariantsMatchReferenceAcrossWidths) {
  RunSweep(/*with_epilogue=*/false);
}

TEST_F(SpmmParityTest, FusedEpilogueMatchesReferenceAcrossWidths) {
  RunSweep(/*with_epilogue=*/true);
}

TEST(SpmmNanTest, ZeroWeightMasksNaNRowInEveryVariant) {
  // Node 4's features are NaN, but every edge sourced at node 4 has weight
  // zero — the zero-skip must keep NaN out of all outputs in all variants.
  TestGraph g;
  g.nodes = 6;
  g.src = {4, 4, 3, 5, 3};
  g.dst = {2, 3, 2, 5, 4};
  const int64_t e = static_cast<int64_t>(g.src.size());
  const int64_t f = 17;
  t::Tensor w = t::Tensor::Ones(e, 1);
  w[0] = 0.0f;
  w[1] = 0.0f;
  util::Rng rng(5);
  t::Tensor x = t::Tensor::Randn(g.nodes, f, &rng);
  for (int64_t c = 0; c < f; ++c) x.At(4, c) = std::nanf("");
  const k::SpmmPlan plan(g.src.data(), g.dst.data(), e, g.nodes);
  for (const k::SimdTier tier : SupportedTiers()) {
    for (int a = 0; a < k::kNumSpmmAlgos; ++a) {
      const k::SpmmChoice choice{static_cast<k::SpmmAlgo>(a), tier};
      t::Tensor out = t::Tensor::Zeros(g.nodes, f);
      plan.Run(choice, w.data(), x.data(), f, out.data(), nullptr, false);
      for (int64_t i = 0; i < out.size(); ++i)
        EXPECT_FALSE(std::isnan(out[i]))
            << k::SpmmVariantName(choice) << " leaked NaN at " << i;
    }
  }
}

TEST(SpmmNanTest, NonzeroWeightPropagatesNaNInEveryVariant) {
  TestGraph g;
  g.nodes = 4;
  g.src = {1, 2};
  g.dst = {0, 3};
  const int64_t f = 8;
  t::Tensor w = t::Tensor::Ones(2, 1);
  t::Tensor x = t::Tensor::Ones(g.nodes, f);
  x.At(1, 3) = std::nanf("");
  const k::SpmmPlan plan(g.src.data(), g.dst.data(), 2, g.nodes);
  for (const k::SimdTier tier : SupportedTiers()) {
    for (int a = 0; a < k::kNumSpmmAlgos; ++a) {
      const k::SpmmChoice choice{static_cast<k::SpmmAlgo>(a), tier};
      t::Tensor out = t::Tensor::Zeros(g.nodes, f);
      plan.Run(choice, w.data(), x.data(), f, out.data(), nullptr, false);
      EXPECT_TRUE(std::isnan(out.At(0, 3))) << k::SpmmVariantName(choice);
      EXPECT_FALSE(std::isnan(out.At(3, 3))) << k::SpmmVariantName(choice);
    }
  }
}

// ---------------------------------------------------------------------------
// Fused op (autograd level): forward equivalence and gradients.

TEST(SpmmBiasActTest, FusedForwardIsBitwiseEqualToUnfusedChainAtScalarTier) {
  ::setenv("SES_KERNEL_VARIANT", "scalar", 1);
  k::ResetActiveTierForTest();
  const TestGraph g = MakeMessyGraph(40, 200, 9);
  auto edges = std::make_shared<ag::EdgeList>();
  edges->src = g.src;
  edges->dst = g.dst;
  edges->num_nodes = g.nodes;
  util::Rng rng(31);
  const int64_t f = 17;
  t::Tensor wt = t::Tensor::Randn(edges->size(), 1, &rng);
  t::Tensor xt = t::Tensor::Randn(g.nodes, f, &rng);
  t::Tensor bt = t::Tensor::Randn(1, f, &rng);
  auto w = ag::Variable::Constant(wt);
  auto x = ag::Variable::Constant(xt);
  auto b = ag::Variable::Constant(bt);
  const ag::EdgeListPtr ep = edges;
  auto fused = ag::SpMMBiasAct(ep, w, x, b, /*relu=*/true);
  auto chain = ag::Relu(ag::AddRowVector(ag::SpMM(ep, w, x), b));
  ASSERT_EQ(fused.value().size(), chain.value().size());
  EXPECT_TRUE(BitwiseEqual(fused.value().data(), chain.value().data(),
                           fused.value().size()));
  // Undefined bias + no relu degrades to plain SpMM.
  auto plain = ag::SpMMBiasAct(ep, w, x, ag::Variable(), /*relu=*/false);
  auto ref = ag::SpMM(ep, w, x);
  EXPECT_TRUE(BitwiseEqual(plain.value().data(), ref.value().data(),
                           ref.value().size()));
  ::unsetenv("SES_KERNEL_VARIANT");
  k::ResetActiveTierForTest();
}

TEST(SpmmBiasActTest, FusedGradientsMatchUnfusedChain) {
  const TestGraph g = MakeMessyGraph(24, 120, 13);
  auto edges = std::make_shared<ag::EdgeList>();
  edges->src = g.src;
  edges->dst = g.dst;
  edges->num_nodes = g.nodes;
  const ag::EdgeListPtr ep = edges;
  util::Rng rng(41);
  const int64_t f = 6;
  t::Tensor wt = t::Tensor::Randn(edges->size(), 1, &rng);
  t::Tensor xt = t::Tensor::Randn(g.nodes, f, &rng);
  t::Tensor bt = t::Tensor::Randn(1, f, &rng);

  auto wf = ag::Variable::Parameter(wt);
  auto xf = ag::Variable::Parameter(xt);
  auto bf = ag::Variable::Parameter(bt);
  ag::Backward(ag::SumAll(ag::SpMMBiasAct(ep, wf, xf, bf, true)));

  auto wu = ag::Variable::Parameter(wt);
  auto xu = ag::Variable::Parameter(xt);
  auto bu = ag::Variable::Parameter(bt);
  ag::Backward(
      ag::SumAll(ag::Relu(ag::AddRowVector(ag::SpMM(ep, wu, xu), bu))));

  EXPECT_LE(MaxAbsDiff(wf.grad().data(), wu.grad().data(), wf.grad().size()),
            1e-5);
  EXPECT_LE(MaxAbsDiff(xf.grad().data(), xu.grad().data(), xf.grad().size()),
            1e-5);
  EXPECT_LE(MaxAbsDiff(bf.grad().data(), bu.grad().data(), bf.grad().size()),
            1e-5);
}

TEST(SpmmBiasActTest, NumericGradientCheck) {
  const TestGraph g = MakeMessyGraph(12, 40, 17);
  auto edges = std::make_shared<ag::EdgeList>();
  edges->src = g.src;
  edges->dst = g.dst;
  edges->num_nodes = g.nodes;
  const ag::EdgeListPtr ep = edges;
  util::Rng rng(43);
  auto w = ag::Variable::Parameter(t::Tensor::Randn(edges->size(), 1, &rng));
  auto x = ag::Variable::Parameter(t::Tensor::Randn(g.nodes, 5, &rng));
  auto b = ag::Variable::Parameter(t::Tensor::Randn(1, 5, &rng));
  // Sigmoid keeps the loss smooth through the ReLU kink region.
  auto result = ag::CheckGradients(
      [&] {
        return ag::MeanAll(ag::Sigmoid(ag::SpMMBiasAct(ep, w, x, b, true)));
      },
      {w, x, b});
  EXPECT_TRUE(result.ok) << "rel err " << result.max_rel_error;
}

// ---------------------------------------------------------------------------
// Autotuner determinism and plan memoization.

TEST(AutotuneTest, HeuristicChoiceIsDeterministicGivenIdenticalStats) {
  const TestGraph g = MakeMessyGraph(64, 500, 3);
  const k::GraphStats stats = k::ComputeGraphStats(
      g.dst.data(), static_cast<int64_t>(g.dst.size()), g.nodes);
  for (const int64_t f : kWidths) {
    const k::SpmmChoice a = k::HeuristicSpmmChoice(stats, f, k::ActiveTier());
    const k::SpmmChoice b = k::HeuristicSpmmChoice(stats, f, k::ActiveTier());
    EXPECT_EQ(static_cast<int>(a.algo), static_cast<int>(b.algo));
    EXPECT_EQ(static_cast<int>(a.tier), static_cast<int>(b.tier));
    EXPECT_EQ(static_cast<int>(a.tier), static_cast<int>(k::ActiveTier()));
  }
}

TEST(AutotuneTest, IdenticalGraphsLandOnTheSameVariant) {
  // Two independently-built plans over identical edge lists — the situation
  // of the taped eval path vs the serving session — must choose the same
  // variant for every width (the bitwise cross-path parity precondition).
  const TestGraph g = MakeMessyGraph(64, 600, 23);
  const int64_t e = static_cast<int64_t>(g.src.size());
  const k::SpmmPlan p1(g.src.data(), g.dst.data(), e, g.nodes);
  const k::SpmmPlan p2(g.src.data(), g.dst.data(), e, g.nodes);
  for (const int64_t f : kWidths) {
    const k::SpmmChoice c1 = p1.Choose(f, nullptr, nullptr);
    const k::SpmmChoice c2 = p2.Choose(f, nullptr, nullptr);
    EXPECT_STREQ(k::SpmmVariantName(c1), k::SpmmVariantName(c2)) << f;
  }
}

TEST(AutotuneTest, TinyGraphPrefersEdgeOrderAndSkewPrefersBlocked) {
  k::GraphStats tiny;
  tiny.nodes = 30;
  tiny.nnz = 60;  // < kTinyNnz: CSR build never pays off
  tiny.avg_degree = 2.0;
  EXPECT_EQ(static_cast<int>(
                k::HeuristicSpmmChoice(tiny, 16, k::SimdTier::kScalar).algo),
            static_cast<int>(k::SpmmAlgo::kEdgeOrder));
  k::GraphStats skewed;
  skewed.nodes = 200000;
  skewed.nnz = 2000000;
  skewed.avg_degree = 10.0;
  skewed.degree_cv = 3.0;  // hub-heavy
  EXPECT_EQ(static_cast<int>(
                k::HeuristicSpmmChoice(skewed, 64, k::SimdTier::kScalar).algo),
            static_cast<int>(k::SpmmAlgo::kCsrBlocked));
}

TEST(AutotuneTest, EdgeListPlanMemoizesAndRebuildsOnResize) {
  auto edges = std::make_shared<ag::EdgeList>();
  edges->src = {0, 1, 2};
  edges->dst = {1, 2, 0};
  edges->num_nodes = 3;
  const auto p1 = edges->plan();
  const auto p2 = edges->plan();
  EXPECT_EQ(p1.get(), p2.get()) << "same graph must reuse the memoized plan";
  EXPECT_EQ(p1->stats().nnz, 3);
}

// ---------------------------------------------------------------------------
// Backbone-level parity: scalar vs active SIMD tier on the paper's
// synthetic benchmarks, across all four encoders.

TEST(BackboneParityTest, ScalarAndSimdLogitsAgreeOnSyntheticBenchmarks) {
  if (k::BestSupportedTier() == k::SimdTier::kScalar)
    GTEST_SKIP() << "no SIMD tier on this host";
  data::SyntheticOptions opt;
  opt.scale = 0.12;
  for (const char* dataset : {"BAShapes", "Tree-Cycle"}) {
    const data::Dataset ds = data::MakeSyntheticByName(dataset, opt);
    const auto edges = ds.graph.DirectedEdges(/*add_self_loops=*/true);
    const nn::FeatureInput input = models::MakeInput(ds);
    for (const char* backbone : {"GCN", "GAT", "GIN", "SAGE"}) {
      util::Rng rng(77);
      const auto enc = models::MakeEncoder(
          backbone, ds.num_features(), 16, ds.num_classes, &rng);
      util::Rng fwd_rng(1);

      ::setenv("SES_KERNEL_VARIANT", "scalar", 1);
      k::ResetActiveTierForTest();
      const t::Tensor scalar_logits =
          enc->Forward(input, edges, {}, 0.0f, false, &fwd_rng)
              .logits.value();

      ::unsetenv("SES_KERNEL_VARIANT");
      k::ResetActiveTierForTest();
      const t::Tensor simd_logits =
          enc->Forward(input, edges, {}, 0.0f, false, &fwd_rng)
              .logits.value();

      ASSERT_EQ(scalar_logits.size(), simd_logits.size());
      EXPECT_LE(MaxAbsDiff(scalar_logits.data(), simd_logits.data(),
                           scalar_logits.size()),
                1e-3)
          << backbone << " on " << dataset;
    }
  }
  ::unsetenv("SES_KERNEL_VARIANT");
  k::ResetActiveTierForTest();
}

}  // namespace
