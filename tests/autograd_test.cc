#include <gtest/gtest.h>

#include <cmath>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "autograd/sparse_ops.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace ag = ses::autograd;
namespace t = ses::tensor;

namespace {

ag::Variable Param(int64_t r, int64_t c, ses::util::Rng* rng) {
  return ag::Variable::Parameter(t::Tensor::Randn(r, c, rng));
}

TEST(AutogradTest, MatMulValue) {
  auto a = ag::Variable::Constant({{1, 2}, {3, 4}});
  auto b = ag::Variable::Constant({{5, 6}, {7, 8}});
  auto c = ag::MatMul(a, b);
  EXPECT_FLOAT_EQ(c.value().At(0, 0), 19);
  EXPECT_FLOAT_EQ(c.value().At(0, 1), 22);
  EXPECT_FLOAT_EQ(c.value().At(1, 0), 43);
  EXPECT_FLOAT_EQ(c.value().At(1, 1), 50);
}

TEST(AutogradTest, MatMulGradient) {
  ses::util::Rng rng(1);
  auto a = Param(3, 4, &rng);
  auto b = Param(4, 2, &rng);
  auto result = ag::CheckGradients(
      [&] { return ag::MeanAll(ag::MatMul(a, b)); }, {a, b});
  EXPECT_TRUE(result.ok) << "rel err " << result.max_rel_error;
}

TEST(AutogradTest, ChainedElementwiseGradient) {
  ses::util::Rng rng(2);
  auto a = Param(4, 3, &rng);
  auto b = Param(4, 3, &rng);
  auto result = ag::CheckGradients(
      [&] {
        auto h = ag::Mul(ag::Sigmoid(a), ag::Tanh(b));
        h = ag::Add(h, ag::Scale(ag::Sub(a, b), 0.5f));
        return ag::MeanAll(ag::Mul(h, h));
      },
      {a, b});
  EXPECT_TRUE(result.ok) << "rel err " << result.max_rel_error;
}

TEST(AutogradTest, ActivationGradients) {
  ses::util::Rng rng(3);
  auto a = Param(5, 4, &rng);
  for (auto make : {
           +[](const ag::Variable& x) { return ag::Relu(x); },
           +[](const ag::Variable& x) { return ag::LeakyRelu(x, 0.2f); },
           +[](const ag::Variable& x) { return ag::Elu(x); },
           +[](const ag::Variable& x) { return ag::Exp(x); },
           +[](const ag::Variable& x) { return ag::Sigmoid(x); },
           +[](const ag::Variable& x) { return ag::Tanh(x); },
       }) {
    auto result = ag::CheckGradients(
        [&] { return ag::MeanAll(make(a)); }, {a});
    EXPECT_TRUE(result.ok) << "rel err " << result.max_rel_error;
  }
}

TEST(AutogradTest, LogSoftmaxGradient) {
  ses::util::Rng rng(4);
  auto a = Param(6, 5, &rng);
  std::vector<int64_t> labels{0, 1, 2, 3, 4, 0};
  std::vector<int64_t> idx{0, 2, 3, 5};
  auto result = ag::CheckGradients(
      [&] { return ag::NllLoss(ag::LogSoftmaxRows(a), labels, idx); }, {a});
  EXPECT_TRUE(result.ok) << "rel err " << result.max_rel_error;
}

TEST(AutogradTest, SoftmaxRowsGradient) {
  ses::util::Rng rng(5);
  auto a = Param(4, 6, &rng);
  auto w = Param(6, 1, &rng);
  auto result = ag::CheckGradients(
      [&] { return ag::MeanAll(ag::MatMul(ag::SoftmaxRows(a), w)); }, {a, w});
  EXPECT_TRUE(result.ok) << "rel err " << result.max_rel_error;
}

TEST(AutogradTest, GatherConcatSliceGradient) {
  ses::util::Rng rng(6);
  auto a = Param(5, 3, &rng);
  auto b = Param(5, 2, &rng);
  std::vector<int64_t> idx{4, 0, 2, 2, 1};
  auto result = ag::CheckGradients(
      [&] {
        auto g = ag::GatherRows(a, idx);
        auto c = ag::ConcatCols(g, b);
        auto s = ag::SliceRows(c, 1, 4);
        return ag::MeanAll(ag::Mul(s, s));
      },
      {a, b});
  EXPECT_TRUE(result.ok) << "rel err " << result.max_rel_error;
}

TEST(AutogradTest, ReductionGradients) {
  ses::util::Rng rng(7);
  auto a = Param(4, 5, &rng);
  auto result = ag::CheckGradients(
      [&] {
        auto rows = ag::SumRows(a);
        auto cols = ag::SumCols(a);
        return ag::Add(ag::MeanAll(ag::Mul(rows, rows)),
                       ag::MeanAll(ag::Mul(cols, cols)));
      },
      {a});
  EXPECT_TRUE(result.ok) << "rel err " << result.max_rel_error;
}

TEST(AutogradTest, TripletLossGradient) {
  ses::util::Rng rng(8);
  auto a = Param(6, 4, &rng);
  auto p = Param(6, 4, &rng);
  auto n = Param(6, 4, &rng);
  auto result = ag::CheckGradients(
      [&] { return ag::TripletLoss(a, p, n, 1.0f); }, {a, p, n});
  EXPECT_TRUE(result.ok) << "rel err " << result.max_rel_error;
}

TEST(AutogradTest, L1AndMseLossGradient) {
  ses::util::Rng rng(9);
  auto a = Param(5, 3, &rng);
  t::Tensor target = t::Tensor::Randn(5, 3, &rng);
  auto r1 = ag::CheckGradients([&] { return ag::L1Loss(a, target); }, {a});
  EXPECT_TRUE(r1.ok) << "rel err " << r1.max_rel_error;
  auto r2 = ag::CheckGradients([&] { return ag::MseLoss(a, target); }, {a});
  EXPECT_TRUE(r2.ok) << "rel err " << r2.max_rel_error;
}

TEST(AutogradTest, SpMMGradient) {
  ses::util::Rng rng(10);
  auto edges = std::make_shared<ag::EdgeList>();
  edges->num_nodes = 4;
  edges->src = {0, 1, 2, 3, 0, 2};
  edges->dst = {1, 0, 3, 2, 2, 0};
  auto w = Param(6, 1, &rng);
  auto x = Param(4, 3, &rng);
  ag::EdgeListPtr ep = edges;
  auto result = ag::CheckGradients(
      [&] { return ag::MeanAll(ag::SpMM(ep, w, x)); }, {w, x});
  EXPECT_TRUE(result.ok) << "rel err " << result.max_rel_error;
}

TEST(AutogradTest, SpMMValueMatchesDense) {
  ses::util::Rng rng(11);
  auto edges = std::make_shared<ag::EdgeList>();
  edges->num_nodes = 3;
  edges->src = {0, 1, 2, 1};
  edges->dst = {1, 2, 0, 0};
  t::Tensor wt = t::Tensor::Randn(4, 1, &rng);
  t::Tensor xt = t::Tensor::Randn(3, 2, &rng);
  auto y = ag::SpMM(edges, ag::Variable::Constant(wt), ag::Variable::Constant(xt));
  // Dense reference: A[dst, src] = w.
  t::Tensor dense(3, 3);
  for (int e = 0; e < 4; ++e) dense.At(edges->dst[e], edges->src[e]) += wt[e];
  t::Tensor ref = t::MatMul(dense, xt);
  EXPECT_LT(y.value().MaxAbsDiff(ref), 1e-6f);
}

TEST(AutogradTest, EdgeSoftmaxGradient) {
  ses::util::Rng rng(12);
  auto edges = std::make_shared<ag::EdgeList>();
  edges->num_nodes = 3;
  edges->src = {0, 1, 2, 1, 0, 2};
  edges->dst = {1, 1, 1, 0, 0, 2};
  auto s = Param(6, 1, &rng);
  auto x = Param(3, 2, &rng);
  ag::EdgeListPtr ep = edges;
  auto result = ag::CheckGradients(
      [&] {
        auto alpha = ag::EdgeSoftmax(ep, s);
        return ag::MeanAll(ag::SpMM(ep, alpha, x));
      },
      {s, x});
  EXPECT_TRUE(result.ok) << "rel err " << result.max_rel_error;
}

TEST(AutogradTest, EdgeSoftmaxSumsToOnePerDestination) {
  ses::util::Rng rng(13);
  auto edges = std::make_shared<ag::EdgeList>();
  edges->num_nodes = 4;
  edges->src = {0, 1, 2, 3, 0, 1, 2};
  edges->dst = {1, 1, 1, 2, 2, 3, 3};
  auto s = Param(7, 1, &rng);
  auto alpha = ag::EdgeSoftmax(edges, s);
  std::vector<double> sums(4, 0.0);
  for (int e = 0; e < 7; ++e) sums[edges->dst[e]] += alpha.value()[e];
  EXPECT_NEAR(sums[1], 1.0, 1e-5);
  EXPECT_NEAR(sums[2], 1.0, 1e-5);
  EXPECT_NEAR(sums[3], 1.0, 1e-5);
  EXPECT_NEAR(sums[0], 0.0, 1e-9);  // no incoming edges
}

TEST(AutogradTest, SparseMaskedLinearGradient) {
  ses::util::Rng rng(14);
  t::Tensor dense(4, 5);
  dense.At(0, 1) = 1.0f;
  dense.At(0, 3) = 2.0f;
  dense.At(1, 0) = -1.0f;
  dense.At(2, 2) = 0.5f;
  dense.At(3, 4) = 1.5f;
  dense.At(3, 0) = -0.5f;
  auto sp = std::make_shared<t::SparseMatrix>(t::SparseMatrix::FromDense(dense));
  auto mask = Param(sp->nnz(), 1, &rng);
  auto w = Param(5, 3, &rng);
  auto result = ag::CheckGradients(
      [&] { return ag::MeanAll(ag::SparseMaskedLinear(sp, mask, w)); },
      {mask, w});
  EXPECT_TRUE(result.ok) << "rel err " << result.max_rel_error;
}

TEST(AutogradTest, SparseMaskedLinearMatchesDense) {
  ses::util::Rng rng(15);
  t::Tensor dense = t::Tensor::Randn(6, 4, &rng);
  // Zero half the entries.
  for (int64_t i = 0; i < dense.size(); i += 2) dense[i] = 0.0f;
  auto sp = std::make_shared<t::SparseMatrix>(t::SparseMatrix::FromDense(dense));
  t::Tensor wt = t::Tensor::Randn(4, 3, &rng);
  auto y = ag::SparseMaskedLinear(sp, {}, ag::Variable::Constant(wt));
  t::Tensor ref = t::MatMul(dense, wt);
  EXPECT_LT(y.value().MaxAbsDiff(ref), 1e-5f);
}

TEST(AutogradTest, FeatureMaskAtNnzGradient) {
  ses::util::Rng rng(16);
  t::Tensor dense(3, 4);
  dense.At(0, 0) = 1.0f;
  dense.At(0, 2) = 1.0f;
  dense.At(1, 1) = 1.0f;
  dense.At(2, 3) = 1.0f;
  dense.At(2, 0) = 1.0f;
  auto sp = std::make_shared<t::SparseMatrix>(t::SparseMatrix::FromDense(dense));
  auto h = Param(3, 5, &rng);
  auto w2 = Param(5, 4, &rng);
  auto b2 = Param(1, 4, &rng);
  auto result = ag::CheckGradients(
      [&] {
        auto m = ag::FeatureMaskAtNnz(h, w2, b2, sp);
        return ag::MeanAll(ag::Mul(m, m));
      },
      {h, w2, b2});
  EXPECT_TRUE(result.ok) << "rel err " << result.max_rel_error;
}

TEST(AutogradTest, GradientAccumulatesWhenVariableReused) {
  auto a = ag::Variable::Parameter(t::Tensor{{2.0f}});
  auto y = ag::Mul(a, a);  // y = a^2, dy/da = 2a = 4
  ag::Backward(ag::SumAll(y));
  EXPECT_FLOAT_EQ(a.grad()[0], 4.0f);
}

TEST(AutogradTest, TransposeGradient) {
  ses::util::Rng rng(17);
  auto a = Param(3, 4, &rng);
  auto result = ag::CheckGradients(
      [&] {
        auto at = ag::Transpose(a);
        return ag::MeanAll(ag::MatMul(a, at));
      },
      {a});
  EXPECT_TRUE(result.ok) << "rel err " << result.max_rel_error;
}

TEST(AutogradTest, DropoutIdentityInEval) {
  ses::util::Rng rng(18);
  auto a = Param(4, 4, &rng);
  auto y = ag::Dropout(a, 0.5f, /*training=*/false, &rng);
  EXPECT_LT(y.value().MaxAbsDiff(a.value()), 1e-9f);
}

TEST(AutogradTest, DropoutPreservesScaleInExpectation) {
  ses::util::Rng rng(19);
  auto a = ag::Variable::Parameter(t::Tensor::Ones(200, 200));
  auto y = ag::Dropout(a, 0.3f, /*training=*/true, &rng);
  EXPECT_NEAR(y.value().Mean(), 1.0f, 0.02f);
}

}  // namespace

// --- ops added for the mask generator ---------------------------------------

// (appended suite: gradients/values of Pow and ScaleBy, used by the
// similarity scorer and the weighted-degree renormalization)
#include "autograd/ops.h"

namespace {

TEST(AutogradExtraTest, PowValuesAndGradient) {
  ses::util::Rng rng(30);
  // Positive inputs (the library uses Pow on degrees/norms, always > 0).
  auto a = ag::Variable::Parameter(t::Tensor::Uniform(4, 3, 0.5f, 2.0f, &rng));
  for (float p : {-1.0f, -0.5f, 0.5f, 2.0f}) {
    auto result = ag::CheckGradients(
        [&] { return ag::MeanAll(ag::Pow(a, p)); }, {a});
    EXPECT_TRUE(result.ok) << "p=" << p << " rel err " << result.max_rel_error;
  }
  auto y = ag::Pow(a, -1.0f);
  for (int64_t i = 0; i < y.value().size(); ++i)
    EXPECT_NEAR(y.value()[i] * a.value()[i], 1.0f, 1e-5f);
}

TEST(AutogradExtraTest, ScaleByGradientToBothInputs) {
  ses::util::Rng rng(31);
  auto a = ag::Variable::Parameter(t::Tensor::Randn(3, 4, &rng));
  auto s = ag::Variable::Parameter(t::Tensor{{1.7f}});
  auto result = ag::CheckGradients(
      [&] { return ag::MeanAll(ag::Mul(ag::ScaleBy(a, s), a)); }, {a, s});
  EXPECT_TRUE(result.ok) << result.max_rel_error;
}

TEST(AutogradExtraTest, CosineSimilarityPipelineGradient) {
  // The structure scorer's full chain: project, normalize, gather, dot.
  ses::util::Rng rng(32);
  auto h = ag::Variable::Parameter(t::Tensor::Randn(5, 4, &rng));
  auto w = ag::Variable::Parameter(t::Tensor::Randn(4, 4, &rng));
  std::vector<int64_t> src{0, 1, 2, 3}, dst{1, 2, 3, 4};
  auto result = ag::CheckGradients(
      [&] {
        auto hp = ag::MatMul(h, w);
        auto norms = ag::Sqrt(ag::AddScalar(ag::SumRows(ag::Mul(hp, hp)), 1e-9f));
        auto hi = ag::GatherRows(hp, src);
        auto hj = ag::GatherRows(hp, dst);
        auto dots = ag::SumRows(ag::Mul(hi, hj));
        auto denom = ag::Mul(ag::GatherRows(norms, src),
                             ag::GatherRows(norms, dst));
        auto cosine = ag::Mul(dots, ag::Pow(denom, -1.0f));
        return ag::MeanAll(ag::Sigmoid(cosine));
      },
      {h, w}, /*epsilon=*/1e-2f, /*tolerance=*/5e-2f);
  EXPECT_TRUE(result.ok) << result.max_rel_error;
}

TEST(AutogradExtraTest, CosineBoundedMinusOneToOne) {
  ses::util::Rng rng(33);
  auto h = ag::Variable::Constant(t::Tensor::Randn(20, 6, &rng));
  std::vector<int64_t> src, dst;
  for (int64_t i = 0; i < 19; ++i) {
    src.push_back(i);
    dst.push_back(i + 1);
  }
  auto norms = ag::Sqrt(ag::AddScalar(ag::SumRows(ag::Mul(h, h)), 1e-9f));
  auto dots = ag::SumRows(
      ag::Mul(ag::GatherRows(h, src), ag::GatherRows(h, dst)));
  auto denom = ag::Mul(ag::GatherRows(norms, src), ag::GatherRows(norms, dst));
  auto cosine = ag::Mul(dots, ag::Pow(denom, -1.0f));
  EXPECT_GE(cosine.value().Min(), -1.0f - 1e-4f);
  EXPECT_LE(cosine.value().Max(), 1.0f + 1e-4f);
}

}  // namespace
