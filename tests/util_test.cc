#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include <fstream>

#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"

namespace u = ses::util;

namespace {

TEST(RngTest, Deterministic) {
  u::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  u::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.NextU64() == b.NextU64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInRange) {
  u::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  u::Rng rng(4);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, NormalMoments) {
  u::Rng rng(5);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  u::Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  u::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    auto sample = rng.SampleWithoutReplacement(50, 12);
    std::set<int64_t> set(sample.begin(), sample.end());
    EXPECT_EQ(set.size(), 12u);
    for (int64_t v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 50);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  u::Rng rng(8);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(sample[static_cast<size_t>(i)], i);
}

TEST(RngTest, CategoricalFollowsWeights) {
  u::Rng rng(9);
  std::vector<double> weights{1.0, 3.0, 0.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[1] / 8000.0, 0.75, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  u::Rng rng(10);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(TableTest, AlignedRendering) {
  u::Table table("demo");
  table.SetHeader({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"bb", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Header row and divider present.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, CsvEscaping) {
  u::Table table;
  table.SetHeader({"a", "b"});
  table.AddRow({"x,y", "has \"quote\""});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"has \"\"quote\"\"\""), std::string::npos);
}

TEST(TableTest, RowArityEnforced) {
  u::Table table;
  table.SetHeader({"a", "b"});
  EXPECT_THROW(table.AddRow({"only one"}), std::logic_error);
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(u::Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(u::Table::MeanStd(90.6412, 0.6499, 2), "90.64±0.65");
}

TEST(TimerTest, FormatsLikeThePaper) {
  EXPECT_EQ(u::FormatDuration(4.3), "4.3s");
  EXPECT_EQ(u::FormatDuration(73.0), "1 min 13s");
  EXPECT_EQ(u::FormatDuration(590.0), "9 min 50s");
}

TEST(TimerTest, MeasuresElapsed) {
  u::Timer timer;
  double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink += i;
  EXPECT_GT(sink, 0.0);  // keep the loop alive
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), timer.ElapsedSeconds());
}

TEST(StringTest, SplitAndJoin) {
  auto parts = u::Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(u::Join({"x", "y", "z"}, "-"), "x-y-z");
}

TEST(StringTest, FlagParser) {
  const char* argv[] = {"prog", "--full", "--scale=0.5", "--epochs=40",
                        "--name=test"};
  u::FlagParser flags(5, const_cast<char**>(argv));
  EXPECT_TRUE(flags.GetBool("full", false));
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0), 0.5);
  EXPECT_EQ(flags.GetInt("epochs", 0), 40);
  EXPECT_EQ(flags.GetString("name", ""), "test");
  EXPECT_EQ(flags.GetInt("missing", 99), 99);
}

TEST(FileTest, WriteCreatesDirectories) {
  const std::string path = "test_artifacts/nested/dir/file.txt";
  u::WriteFile(path, "content");
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "content");
}

}  // namespace
