#include <gtest/gtest.h>

#include "data/real_world.h"
#include "data/synthetic.h"
#include "models/asdgn.h"
#include "models/backbone_models.h"
#include "models/fused_gat.h"
#include "models/protgnn.h"
#include "models/segnn.h"
#include "models/unimp.h"
#include "core/ses_model.h"
#include "nn/linear.h"

namespace md = ses::models;

namespace {

ses::data::Dataset EasyDataset() {
  // Small, homophilous, feature-informative: every sane model should clear
  // 60% on it with a short budget.
  return ses::data::MakeRealWorldByName("Cora", /*scale=*/0.08, /*seed=*/3);
}

md::TrainConfig QuickConfig() {
  md::TrainConfig cfg;
  cfg.epochs = 40;
  cfg.hidden = 32;
  cfg.dropout = 0.2f;
  cfg.seed = 1;
  return cfg;
}

// Every NodeClassifier must learn the easy dataset and produce consistent
// shapes. Parameterized over the model zoo.
class ModelZooTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelZooTest, LearnsEasyDataset) {
  auto ds = EasyDataset();
  std::unique_ptr<md::NodeClassifier> model;
  const std::string name = GetParam();
  if (name == "GCN" || name == "GAT" || name == "GIN" || name == "SAGE")
    model = std::make_unique<md::BackboneModel>(name);
  else if (name == "UniMP")
    model = std::make_unique<md::UniMpModel>();
  else if (name == "FusedGAT")
    model = std::make_unique<md::FusedGatModel>();
  else if (name == "ASDGN")
    model = std::make_unique<md::AsdgnModel>();
  else if (name == "SEGNN")
    model = std::make_unique<md::SegnnModel>();
  else
    model = std::make_unique<md::ProtGnnModel>();

  model->Fit(ds, QuickConfig());
  auto logits = model->Logits(ds);
  EXPECT_EQ(logits.rows(), ds.num_nodes());
  EXPECT_EQ(logits.cols(), ds.num_classes);
  const double acc = md::Accuracy(logits, ds.labels, ds.test_idx);
  // ProtGNN's prototype bottleneck genuinely trails the backbones (the
  // paper's Table 3 shows the same); it gets a lower bar.
  EXPECT_GT(acc, name == "ProtGNN" ? 0.35 : 0.55) << name << " acc " << acc;
  auto emb = model->Embeddings(ds);
  EXPECT_EQ(emb.rows(), ds.num_nodes());
  EXPECT_GT(emb.cols(), 1);
}

INSTANTIATE_TEST_SUITE_P(Zoo, ModelZooTest,
                         ::testing::Values("GCN", "GAT", "GIN", "SAGE",
                                           "UniMP", "FusedGAT", "ASDGN",
                                           "SEGNN", "ProtGNN"));

TEST(BackboneTest, BestValSnapshotNotWorseThanFinal) {
  auto ds = EasyDataset();
  md::BackboneModel with("GCN");
  auto cfg = QuickConfig();
  with.Fit(ds, cfg);
  md::BackboneModel without("GCN");
  cfg.track_best_val = false;
  without.Fit(ds, cfg);
  // Both are reasonable; the snapshotted one should not be dramatically
  // worse on validation (it is selected for it).
  const double val_with = md::Accuracy(with.Logits(ds), ds.labels, ds.val_idx);
  const double val_without =
      md::Accuracy(without.Logits(ds), ds.labels, ds.val_idx);
  EXPECT_GE(val_with + 1e-9, val_without - 0.1);
}

TEST(AccuracyTest, ComputesFraction) {
  ses::tensor::Tensor logits{{0.9f, 0.1f}, {0.2f, 0.8f}, {0.7f, 0.3f}};
  std::vector<int64_t> labels{0, 1, 1};
  EXPECT_DOUBLE_EQ(md::Accuracy(logits, labels, {0, 1, 2}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(md::Accuracy(logits, labels, {2}), 0.0);
  EXPECT_DOUBLE_EQ(md::Accuracy(logits, labels, {}), 0.0);
}

TEST(SegnnTest, EdgeScoresFavorSameClassPairs) {
  auto ds = EasyDataset();
  md::SegnnModel segnn;
  segnn.Fit(ds, QuickConfig());
  auto scores = segnn.EdgeScores(ds);
  ASSERT_EQ(scores.size(), ds.graph.edges().size());
  double same = 0.0, diff = 0.0;
  int64_t n_same = 0, n_diff = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    auto [u, v] = ds.graph.edges()[i];
    if (ds.labels[static_cast<size_t>(u)] == ds.labels[static_cast<size_t>(v)]) {
      same += scores[i];
      ++n_same;
    } else {
      diff += scores[i];
      ++n_diff;
    }
  }
  ASSERT_GT(n_same, 0);
  ASSERT_GT(n_diff, 0);
  EXPECT_GT(same / n_same, diff / n_diff);
}

TEST(ProtGnnTest, PrototypesHaveExpectedShape) {
  auto ds = EasyDataset();
  md::ProtGnnModel prot("GCN", /*protos_per_class=*/2);
  prot.Fit(ds, QuickConfig());
  auto protos = prot.Prototypes();
  EXPECT_EQ(protos.rows(), 2 * ds.num_classes);
  EXPECT_EQ(protos.cols(), QuickConfig().hidden);
}

TEST(ModuleSerializationTest, SaveLoadRoundTripPreservesPredictions) {
  auto ds = EasyDataset();
  md::BackboneModel original("GCN");
  original.Fit(ds, QuickConfig());
  auto before = original.Logits(ds);
  const std::string path = "test_artifacts/gcn_params.bin";
  const_cast<md::Encoder*>(original.encoder())->SaveParameters(path);

  // Fresh model with different init; loading must reproduce predictions.
  md::BackboneModel restored("GCN");
  auto cfg = QuickConfig();
  cfg.epochs = 1;
  cfg.seed = 999;
  restored.Fit(ds, cfg);
  const_cast<md::Encoder*>(restored.encoder())->LoadParameters(path);
  EXPECT_LT(restored.Logits(ds).MaxAbsDiff(before), 1e-6f);
}

TEST(ModuleSerializationTest, LoadRejectsShapeMismatch) {
  ses::util::Rng rng(1);
  ses::nn::Mlp small({4, 8, 2}, &rng), big({4, 16, 2}, &rng);
  small.SaveParameters("test_artifacts/mlp_small.bin");
  EXPECT_THROW(big.LoadParameters("test_artifacts/mlp_small.bin"),
               std::logic_error);
}

TEST(SesBackboneTest, RunsOnGinAndSage) {
  auto ds = EasyDataset();
  for (const std::string backbone : {"GIN", "SAGE"}) {
    ses::core::SesOptions opt;
    opt.backbone = backbone;
    ses::core::SesModel model(opt);
    auto cfg = QuickConfig();
    cfg.epochs = 25;
    model.Fit(ds, cfg);
    EXPECT_GT(md::Accuracy(model.Logits(ds), ds.labels, ds.test_idx), 0.5)
        << backbone;
    EXPECT_EQ(model.EdgeScores(ds).size(), ds.graph.edges().size());
  }
}

TEST(UniMpTest, LabelPropagationHelpsOverFeatureOnlyGraph) {
  // With very few informative features, labels carried by message passing
  // still let UniMP beat chance.
  auto ds = EasyDataset();
  md::UniMpModel unimp;
  unimp.Fit(ds, QuickConfig());
  EXPECT_GT(md::Accuracy(unimp.Logits(ds), ds.labels, ds.test_idx),
            1.2 / ds.num_classes);
}

}  // namespace
