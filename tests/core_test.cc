#include <gtest/gtest.h>
#include <cmath>

#include <set>

#include "autograd/grad_check.h"
#include "core/mask_generator.h"
#include "core/pairs.h"
#include "core/ses_model.h"
#include "data/synthetic.h"
#include "graph/sampling.h"
#include "metrics/metrics.h"

namespace ag = ses::autograd;
namespace c = ses::core;
namespace g = ses::graph;
namespace t = ses::tensor;

namespace {

ses::data::Dataset SmallDataset() {
  ses::data::SyntheticOptions opt;
  opt.scale = 0.35;
  return ses::data::MakeBaShapes(opt);
}

TEST(MaskGeneratorTest, FeatureMaskShapeAndRange) {
  ses::util::Rng rng(1);
  auto ds = SmallDataset();
  c::MaskGenerator gen(16, ds.num_features(), &rng);
  auto h = ag::Variable::Constant(t::Tensor::Randn(ds.num_nodes(), 16, &rng));
  auto mask = gen.FeatureMask(h, ds.features);
  EXPECT_EQ(mask.rows(), ds.features->nnz());
  EXPECT_EQ(mask.cols(), 1);
  EXPECT_GT(mask.value().Min(), 0.0f);
  EXPECT_LT(mask.value().Max(), 1.0f);
}

TEST(MaskGeneratorTest, StructureMaskShapeAndRange) {
  ses::util::Rng rng(2);
  auto ds = SmallDataset();
  g::KHopAdjacency khop(ds.graph, 2);
  c::MaskGenerator gen(16, ds.num_features(), &rng);
  auto h = ag::Variable::Constant(t::Tensor::Randn(ds.num_nodes(), 16, &rng));
  auto mask = gen.StructureMask(h, khop.PairEdges());
  EXPECT_EQ(mask.rows(), khop.num_pairs());
  EXPECT_GT(mask.value().Min(), 0.0f);
  EXPECT_LT(mask.value().Max(), 1.0f);
}

TEST(MaskGeneratorTest, GradientsFlowToAllParameters) {
  ses::util::Rng rng(3);
  g::Graph graph = g::Graph::FromUndirectedEdges(5, {{0, 1}, {1, 2}, {2, 3},
                                                     {3, 4}});
  g::KHopAdjacency khop(graph, 2);
  t::Tensor dense(5, 4);
  dense.At(0, 0) = dense.At(1, 1) = dense.At(2, 2) = dense.At(3, 3) =
      dense.At(4, 0) = 1.0f;
  auto sp = std::make_shared<t::SparseMatrix>(t::SparseMatrix::FromDense(dense));
  c::MaskGenerator gen(6, 4, &rng);
  auto h = ag::Variable::Parameter(t::Tensor::Randn(5, 6, &rng));
  std::vector<ag::Variable> params = gen.Parameters();
  params.push_back(h);
  auto result = ag::CheckGradients(
      [&] {
        auto fm = gen.FeatureMask(h, sp);
        auto sm = gen.StructureMask(h, khop.PairEdges());
        return ag::Add(ag::MeanAll(ag::Mul(fm, fm)),
                       ag::MeanAll(ag::Mul(sm, sm)));
      },
      params, /*epsilon=*/1e-2f, /*tolerance=*/5e-2f);
  EXPECT_TRUE(result.ok) << result.max_rel_error;
}

TEST(PairConstructionTest, PositivesComeFromKHopNegativesFromComplement) {
  ses::util::Rng rng(4);
  auto ds = SmallDataset();
  g::KHopAdjacency khop(ds.graph, 2);
  auto negs = g::SampleNegativeSets(khop, {}, &rng);
  t::Tensor mask = t::Tensor::Uniform(khop.num_pairs(), 1, 0.0f, 1.0f, &rng);
  auto pairs = c::ConstructPairs(khop, mask, negs, 0.8, &rng);
  ASSERT_GT(pairs.size(), 0);
  for (int64_t i = 0; i < pairs.size(); ++i) {
    EXPECT_TRUE(khop.Contains(pairs.anchor[static_cast<size_t>(i)],
                              pairs.positive[static_cast<size_t>(i)]));
    EXPECT_FALSE(khop.Contains(pairs.anchor[static_cast<size_t>(i)],
                               pairs.negative[static_cast<size_t>(i)]));
    EXPECT_NE(pairs.anchor[static_cast<size_t>(i)],
              pairs.negative[static_cast<size_t>(i)]);
  }
}

TEST(PairConstructionTest, PositivesAreHighestMaskNeighbors) {
  // Path graph: deterministic neighbor sets.
  g::Graph graph = g::Graph::FromUndirectedEdges(5, {{0, 1}, {1, 2}, {2, 3},
                                                     {3, 4}});
  g::KHopAdjacency khop(graph, 1);
  ses::util::Rng rng(5);
  auto negs = g::SampleNegativeSets(khop, {}, &rng);
  // Node 2 has neighbors {1, 3}; weight 3 higher.
  t::Tensor mask(khop.num_pairs(), 1);
  for (int64_t v = 0; v < 5; ++v) {
    auto nbrs = khop.Neighbors(v);
    for (size_t j = 0; j < nbrs.size(); ++j)
      mask[khop.PairOffset(v) + static_cast<int64_t>(j)] =
          nbrs[j] == 3 ? 0.9f : 0.1f;
  }
  // ratio 0.5 over 2 neighbors keeps exactly 1 per node.
  auto pairs = c::ConstructPairs(khop, mask, negs, 0.5, &rng);
  for (int64_t i = 0; i < pairs.size(); ++i) {
    if (pairs.anchor[static_cast<size_t>(i)] == 2)
      EXPECT_EQ(pairs.positive[static_cast<size_t>(i)], 3);
  }
}

TEST(PairConstructionTest, SampleRatioScalesPairCount) {
  ses::util::Rng rng(6);
  auto ds = SmallDataset();
  g::KHopAdjacency khop(ds.graph, 2);
  auto negs = g::SampleNegativeSets(khop, {}, &rng);
  t::Tensor mask = t::Tensor::Uniform(khop.num_pairs(), 1, 0.0f, 1.0f, &rng);
  auto low = c::ConstructPairs(khop, mask, negs, 0.2, &rng);
  auto high = c::ConstructPairs(khop, mask, negs, 0.9, &rng);
  EXPECT_LT(low.size(), high.size());
  EXPECT_LE(high.size(), khop.num_pairs());
}

// --- SES end-to-end -----------------------------------------------------------

TEST(SesModelTest, TrainsAndExplainsOnBaShapes) {
  auto ds = SmallDataset();
  c::SesOptions opt;
  opt.backbone = "GCN";
  c::SesModel model(opt);
  ses::models::TrainConfig cfg;
  cfg.epochs = 80;
  cfg.hidden = 32;
  cfg.dropout = 0.2f;
  cfg.seed = 1;
  model.Fit(ds, cfg);

  // Prediction clearly above chance (4 classes).
  const double acc =
      ses::models::Accuracy(model.Logits(ds), ds.labels, ds.test_idx);
  EXPECT_GT(acc, 0.45);

  // Explanations exist with the right shapes and ranges.
  EXPECT_EQ(model.feature_mask_nnz().rows(), ds.features->nnz());
  EXPECT_EQ(model.structure_mask_khop().rows(), model.khop().num_pairs());
  EXPECT_GE(model.structure_mask_khop().Min(), 0.0f);
  EXPECT_LE(model.structure_mask_khop().Max(), 1.0f);

  // Edge scores line up with the graph.
  EXPECT_EQ(model.EdgeScores(ds).size(), ds.graph.edges().size());

  // Timing fields populated.
  EXPECT_GT(model.explainable_training_seconds(), 0.0);
  EXPECT_GT(model.enhanced_learning_seconds(), 0.0);
  EXPECT_EQ(model.loss_history().size(), static_cast<size_t>(cfg.epochs));
  EXPECT_EQ(model.mask_snapshots().size(), 3u);
}

TEST(SesModelTest, ExplanationAucBeatsChanceAtBenchmarkScale) {
  // Mask quality is evaluated at the benchmark's scale (the small fixture
  // graphs put too few motif nodes in the train split for a stable mask).
  auto ds = ses::data::MakeBaShapes();
  c::SesOptions opt;
  c::SesModel model(opt);
  ses::models::TrainConfig cfg;
  cfg.epochs = 150;
  cfg.hidden = 64;
  cfg.dropout = 0.2f;
  cfg.seed = 1;
  model.Fit(ds, cfg);
  EXPECT_GT(ses::metrics::ExplanationAuc(ds, model.EdgeScores(ds)), 0.6);
}

TEST(SesModelTest, GatBackboneRuns) {
  auto ds = SmallDataset();
  c::SesOptions opt;
  opt.backbone = "GAT";
  c::SesModel model(opt);
  ses::models::TrainConfig cfg;
  cfg.epochs = 50;
  cfg.hidden = 32;
  cfg.seed = 2;
  model.Fit(ds, cfg);
  EXPECT_GT(ses::models::Accuracy(model.Logits(ds), ds.labels, ds.test_idx),
            0.35);
  EXPECT_EQ(model.name(), "SES (GAT)");
}

TEST(SesModelTest, AblationSwitchesRun) {
  auto ds = SmallDataset();
  ses::models::TrainConfig cfg;
  cfg.epochs = 15;
  cfg.hidden = 16;
  cfg.seed = 3;
  for (int variant = 0; variant < 4; ++variant) {
    c::SesOptions opt;
    opt.use_feature_mask = variant != 0;
    opt.use_structure_mask = variant != 1;
    opt.use_xent_phase2 = variant != 2;
    opt.use_triplet = variant != 3;
    c::SesModel model(opt);
    model.Fit(ds, cfg);
    EXPECT_EQ(model.Logits(ds).rows(), ds.num_nodes());
  }
}

TEST(SesModelTest, MaskXentAblationChangesMasks) {
  auto ds = SmallDataset();
  ses::models::TrainConfig cfg;
  cfg.epochs = 25;
  cfg.hidden = 16;
  cfg.seed = 4;
  c::SesOptions with;
  c::SesModel a(with);
  a.Fit(ds, cfg);
  c::SesOptions without;
  without.use_mask_xent = false;
  c::SesModel b(without);
  b.Fit(ds, cfg);
  EXPECT_GT(a.structure_mask_khop().MaxAbsDiff(b.structure_mask_khop()),
            1e-3f);
}

TEST(SesModelTest, DeterministicGivenSeed) {
  auto ds = SmallDataset();
  ses::models::TrainConfig cfg;
  cfg.epochs = 10;
  cfg.hidden = 16;
  cfg.seed = 5;
  c::SesOptions opt;
  c::SesModel a(opt), b(opt);
  a.Fit(ds, cfg);
  b.Fit(ds, cfg);
  EXPECT_FLOAT_EQ(a.Logits(ds).MaxAbsDiff(b.Logits(ds)), 0.0f);
}

TEST(SesModelTest, EdgeScoresAlignWithGraph) {
  auto ds = SmallDataset();
  c::SesOptions opt;
  c::SesModel model(opt);
  ses::models::TrainConfig cfg;
  cfg.epochs = 10;
  cfg.hidden = 16;
  cfg.seed = 6;
  model.Fit(ds, cfg);
  auto scores = model.EdgeScores(ds);
  EXPECT_EQ(scores.size(), ds.graph.edges().size());
  for (float s : scores) {
    EXPECT_GE(s, 0.0f);
    EXPECT_LE(s, 1.0f);
  }
}

}  // namespace
