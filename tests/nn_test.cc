#include <gtest/gtest.h>
#include <cmath>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "graph/graph.h"
#include "nn/gat_conv.h"
#include "nn/gcn_conv.h"
#include "nn/linear.h"
#include "nn/optim.h"
#include "tensor/ops.h"

namespace ag = ses::autograd;
namespace nn = ses::nn;
namespace t = ses::tensor;
namespace g = ses::graph;

namespace {

TEST(ModuleTest, ParameterRegistry) {
  ses::util::Rng rng(1);
  nn::Mlp mlp({4, 8, 3}, &rng);
  // Two Linear layers, each weight + bias.
  EXPECT_EQ(mlp.Parameters().size(), 4u);
  EXPECT_EQ(mlp.NumParameters(), 4 * 8 + 8 + 8 * 3 + 3);
}

TEST(ModuleTest, ZeroGradClearsAccumulation) {
  ses::util::Rng rng(2);
  nn::Linear layer(3, 2, &rng);
  auto x = ag::Variable::Constant(t::Tensor::Randn(5, 3, &rng));
  ag::Backward(ag::MeanAll(layer.Forward(x)));
  EXPECT_GT(layer.weight().grad().Norm(), 0.0f);
  layer.ZeroGrad();
  EXPECT_FLOAT_EQ(layer.weight().grad().Norm(), 0.0f);
}

TEST(ModuleTest, CopyParametersFrom) {
  ses::util::Rng rng(3);
  nn::Mlp a({4, 6, 2}, &rng), b({4, 6, 2}, &rng);
  EXPECT_GT(a.Parameters()[0].value().MaxAbsDiff(b.Parameters()[0].value()),
            0.0f);
  b.CopyParametersFrom(a);
  for (size_t i = 0; i < a.Parameters().size(); ++i)
    EXPECT_FLOAT_EQ(
        a.Parameters()[i].value().MaxAbsDiff(b.Parameters()[i].value()), 0.0f);
}

TEST(LinearTest, GradientCheck) {
  ses::util::Rng rng(4);
  nn::Linear layer(5, 3, &rng);
  auto x = ag::Variable::Constant(t::Tensor::Randn(6, 5, &rng));
  auto result = ag::CheckGradients(
      [&] { return ag::MeanAll(ag::Tanh(layer.Forward(x))); },
      layer.Parameters());
  EXPECT_TRUE(result.ok) << result.max_rel_error;
}

TEST(MlpTest, OutputActivations) {
  ses::util::Rng rng(5);
  nn::Mlp sigmoid_mlp({3, 4, 2}, &rng, nn::Mlp::OutputActivation::kSigmoid);
  auto x = ag::Variable::Constant(t::Tensor::Randn(7, 3, &rng));
  t::Tensor out = sigmoid_mlp.Forward(x).value();
  EXPECT_GT(out.Min(), 0.0f);
  EXPECT_LT(out.Max(), 1.0f);
  nn::Mlp relu_mlp({3, 4, 2}, &rng, nn::Mlp::OutputActivation::kRelu);
  EXPECT_GE(relu_mlp.Forward(x).value().Min(), 0.0f);
}

TEST(GcnConvTest, MeanOverNeighborsOnRegularGraph) {
  // On a triangle with self-loops, symmetric normalization averages equally.
  g::Graph graph = g::Graph::FromUndirectedEdges(3, {{0, 1}, {1, 2}, {2, 0}});
  auto edges = graph.DirectedEdges(true);
  ses::util::Rng rng(6);
  nn::GcnConv conv(2, 2, &rng, /*bias=*/false);
  // Identity weight to observe pure aggregation.
  conv.Parameters()[0].mutable_value() = t::Tensor::Eye(2);
  t::Tensor x{{3, 0}, {0, 3}, {3, 3}};
  auto out = conv.Forward(nn::FeatureInput::Dense(ag::Variable::Constant(x)),
                          edges, nn::MakeGcnWeights(edges));
  // Every node aggregates (1/3) * column sums = (2, 2).
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(out.value().At(i, 0), 2.0f, 1e-5f);
    EXPECT_NEAR(out.value().At(i, 1), 2.0f, 1e-5f);
  }
}

TEST(GcnConvTest, GradientCheckThroughSparseInput) {
  ses::util::Rng rng(7);
  g::Graph graph = g::Graph::FromUndirectedEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  auto edges = graph.DirectedEdges(true);
  t::Tensor dense = t::Tensor::Randn(4, 5, &rng);
  dense[3] = dense[7] = 0.0f;
  auto sparse = std::make_shared<t::SparseMatrix>(
      t::SparseMatrix::FromDense(dense));
  nn::GcnConv conv(5, 3, &rng);
  auto mask = ag::Variable::Parameter(t::Tensor::Ones(sparse->nnz(), 1));
  std::vector<ag::Variable> params = conv.Parameters();
  params.push_back(mask);
  auto result = ag::CheckGradients(
      [&] {
        auto input = nn::FeatureInput::Sparse(sparse, mask);
        return ag::MeanAll(
            conv.Forward(input, edges, nn::MakeGcnWeights(edges)));
      },
      params);
  EXPECT_TRUE(result.ok) << result.max_rel_error;
}

TEST(GcnConvTest, EdgeMaskZeroKillsMessage) {
  g::Graph graph = g::Graph::FromUndirectedEdges(2, {{0, 1}});
  auto edges = graph.DirectedEdges(/*add_self_loops=*/false);
  ses::util::Rng rng(8);
  nn::GcnConv conv(2, 2, &rng, /*bias=*/false);
  t::Tensor x{{1, 2}, {3, 4}};
  t::Tensor zero_w(2, 1);
  auto out = conv.Forward(nn::FeatureInput::Dense(ag::Variable::Constant(x)),
                          edges, ag::Variable::Constant(zero_w));
  EXPECT_FLOAT_EQ(out.value().Norm(), 0.0f);
}

TEST(GatConvTest, GradientCheck) {
  ses::util::Rng rng(9);
  g::Graph graph = g::Graph::FromUndirectedEdges(4, {{0, 1}, {1, 2}, {2, 3},
                                                     {3, 0}});
  auto edges = graph.DirectedEdges(true);
  // Slope 1 removes the LeakyReLU kink: float32 finite differences near the
  // kink otherwise dominate the error (the kink's subgradient is separately
  // covered by the op-level LeakyRelu check).
  nn::GatConv conv(3, 2, /*heads=*/2, &rng, /*leaky_slope=*/1.0f);
  auto x = ag::Variable::Constant(t::Tensor::Randn(4, 3, &rng));
  auto result = ag::CheckGradients(
      [&] {
        return ag::MeanAll(
            conv.Forward(nn::FeatureInput::Dense(x), edges));
      },
      conv.Parameters(), /*epsilon=*/2e-2f, /*tolerance=*/1e-1f);
  EXPECT_TRUE(result.ok) << result.max_rel_error;
}

TEST(GatConvTest, OutputShapeAndAttentionCache) {
  ses::util::Rng rng(10);
  g::Graph graph = g::Graph::FromUndirectedEdges(5, {{0, 1}, {1, 2}, {3, 4}});
  auto edges = graph.DirectedEdges(true);
  nn::GatConv conv(4, 3, /*heads=*/2, &rng);
  auto x = ag::Variable::Constant(t::Tensor::Randn(5, 4, &rng));
  auto out = conv.Forward(nn::FeatureInput::Dense(x), edges);
  EXPECT_EQ(out.rows(), 5);
  EXPECT_EQ(out.cols(), 6);  // heads * out_per_head
  EXPECT_EQ(conv.last_attention().rows(), edges->size());
  // Attention is a softmax over incoming edges: non-negative.
  EXPECT_GE(conv.last_attention().Min(), 0.0f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  auto x = ag::Variable::Parameter(t::Tensor{{5.0f, -3.0f}});
  nn::Adam adam({x}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    ag::Backward(ag::MeanAll(ag::Mul(x, x)));
    adam.Step();
  }
  EXPECT_LT(x.value().Norm(), 0.05f);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  // With zero-gradient loss, decoupled weight decay alone shrinks weights.
  auto x = ag::Variable::Parameter(t::Tensor{{1.0f}});
  nn::Adam adam({x}, 0.01f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/1.0f);
  auto zero = ag::Variable::Parameter(t::Tensor{{0.0f}});
  for (int i = 0; i < 100; ++i) {
    ag::Backward(ag::Mul(x, zero));  // d/dx = 0
    adam.Step();
  }
  EXPECT_LT(std::fabs(x.value()[0]), 1.0f);
}

TEST(SgdTest, StepsDownhill) {
  auto x = ag::Variable::Parameter(t::Tensor{{2.0f}});
  nn::Sgd sgd({x}, 0.25f);
  ag::Backward(ag::Mul(x, x));  // grad = 2x = 4
  sgd.Step();
  EXPECT_FLOAT_EQ(x.value()[0], 1.0f);
}

TEST(OptimTest, SkipsUntouchedParameters) {
  ses::util::Rng rng(11);
  auto used = ag::Variable::Parameter(t::Tensor{{1.0f}});
  auto unused = ag::Variable::Parameter(t::Tensor{{7.0f}});
  nn::Adam adam({used, unused}, 0.5f);
  ag::Backward(ag::Mul(used, used));
  adam.Step();
  EXPECT_NE(used.value()[0], 1.0f);
  EXPECT_FLOAT_EQ(unused.value()[0], 7.0f);
}

}  // namespace

// --- masked-aggregation normalization invariants -----------------------------

#include "models/encoders.h"

namespace {

TEST(MaskNormalizationTest, RenormalizedGcnIsScaleInvariantInMask) {
  // Scaling every mask entry by a constant must not change the output when
  // the weighted-degree renormalization is on.
  ses::util::Rng rng(40);
  g::Graph graph = g::Graph::FromUndirectedEdges(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}});
  auto edges = graph.DirectedEdges(true);
  ses::models::GcnEncoder enc(4, 8, 3, &rng);
  auto x = nn::FeatureInput::Dense(
      ag::Variable::Constant(t::Tensor::Randn(6, 4, &rng)));
  t::Tensor mask_t = t::Tensor::Uniform(edges->size(), 1, 0.2f, 0.9f, &rng);
  t::Tensor mask_scaled = t::Scale(mask_t, 0.1f);
  ses::util::Rng r1(0), r2(0);
  auto a = enc.Forward(x, edges, ag::Variable::Constant(mask_t), 0.0f, false,
                       &r1, /*renormalize_mask=*/true);
  auto b = enc.Forward(x, edges, ag::Variable::Constant(mask_scaled), 0.0f,
                       false, &r2, /*renormalize_mask=*/true);
  EXPECT_LT(a.logits.value().MaxAbsDiff(b.logits.value()), 1e-4f);
}

TEST(MaskNormalizationTest, NonRenormalizedCouplesToMaskScale) {
  // Without renormalization the same rescaling must change the output —
  // this coupling is the phase-1 training signal.
  ses::util::Rng rng(41);
  g::Graph graph = g::Graph::FromUndirectedEdges(
      5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto edges = graph.DirectedEdges(true);
  ses::models::GcnEncoder enc(3, 6, 2, &rng);
  auto x = nn::FeatureInput::Dense(
      ag::Variable::Constant(t::Tensor::Randn(5, 3, &rng)));
  t::Tensor mask_t = t::Tensor::Full(edges->size(), 1, 0.8f);
  t::Tensor mask_half = t::Scale(mask_t, 0.5f);
  ses::util::Rng r1(0), r2(0);
  auto a = enc.Forward(x, edges, ag::Variable::Constant(mask_t), 0.0f, false,
                       &r1, /*renormalize_mask=*/false);
  auto b = enc.Forward(x, edges, ag::Variable::Constant(mask_half), 0.0f,
                       false, &r2, /*renormalize_mask=*/false);
  EXPECT_GT(a.logits.value().MaxAbsDiff(b.logits.value()), 1e-3f);
}

TEST(MaskNormalizationTest, GinAndSageEncodersGradCheck) {
  ses::util::Rng rng(42);
  g::Graph graph = g::Graph::FromUndirectedEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  auto edges = graph.DirectedEdges(true);
  auto x = nn::FeatureInput::Dense(
      ag::Variable::Constant(t::Tensor::Randn(4, 3, &rng)));
  for (const std::string backbone : {"GIN", "SAGE"}) {
    auto enc = ses::models::MakeEncoder(backbone, 3, 6, 2, &rng);
    ses::util::Rng r0(0);
    auto result = ag::CheckGradients(
        [&] {
          ses::util::Rng rr(0);
          return ag::MeanAll(
              enc->Forward(x, edges, {}, 0.0f, false, &rr).logits);
        },
        enc->Parameters(), /*epsilon=*/5e-3f, /*tolerance=*/1e-1f);
    EXPECT_TRUE(result.ok) << backbone << " rel err " << result.max_rel_error;
  }
}

}  // namespace
