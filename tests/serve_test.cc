// Tests for the batched inference scheduler: micro-batch flush policies
// (deadline / max-batch / shutdown), bitwise parity of the scheduled path
// against direct InferenceSession calls under concurrent enqueue, trace-id
// propagation from enqueue to the worker's spans, and the ses.sched.*
// instrument surface — plus the overload-resilience contract: typed
// statuses for every rejected/expired/faulted request (no future ever
// hangs), deadline semantics at both expiry stages, admission-control
// shedding, degraded-mode cache serving, injected serving faults, and
// clean drain with submissions racing Stop().
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/inference_session.h"
#include "core/ses_model.h"
#include "data/synthetic.h"
#include "graph/khop.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/request.h"
#include "obs/trace.h"
#include "robust/fault.h"
#include "serve/admission.h"
#include "serve/batch_scheduler.h"
#include "serve/retry.h"
#include "tensor/ops.h"

namespace c = ses::core;
namespace t = ses::tensor;
namespace obs = ses::obs;
namespace serve = ses::serve;
namespace robust = ses::robust;

namespace {

/// One tiny trained model shared by every scheduler test (training dominates
/// the binary's runtime; the scheduler itself is microseconds per test).
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ses::data::SyntheticOptions opt;
    opt.scale = 0.25;
    ds_ = new ses::data::Dataset(ses::data::MakeSyntheticByName("BAShapes", opt));
    c::SesOptions sopt;
    sopt.backbone = "GCN";
    model_ = new c::SesModel(sopt);
    ses::models::TrainConfig cfg;
    cfg.epochs = 4;
    cfg.hidden = 16;
    cfg.seed = 1;
    model_->Fit(*ds_, cfg);
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
    delete ds_;
    ds_ = nullptr;
  }

  int64_t num_nodes() const { return ds_->graph.num_nodes(); }

  static ses::data::Dataset* ds_;
  static c::SesModel* model_;
};

ses::data::Dataset* ServeTest::ds_ = nullptr;
c::SesModel* ServeTest::model_ = nullptr;

TEST_F(ServeTest, DeadlineFlushWithSingleRequest) {
  c::InferenceSession session(model_, ds_);
  serve::SchedulerOptions opt;
  opt.max_batch_size = 64;     // never reached
  opt.flush_deadline_us = 500; // the deadline must fire instead
  serve::BatchScheduler scheduler(&session, opt);

  const int64_t node = 3;
  serve::PredictFuture fut = scheduler.SubmitPredict(node);
  ASSERT_TRUE(fut.valid());
  EXPECT_EQ(fut.Get(), session.PredictNode(node));

  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.requests, 1);
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.deadline_flushes, 1);
  EXPECT_EQ(stats.full_flushes, 0);
}

TEST_F(ServeTest, MaxBatchFlushDoesNotWaitForDeadline) {
  c::InferenceSession session(model_, ds_);
  serve::SchedulerOptions opt;
  opt.max_batch_size = 4;
  opt.flush_deadline_us = 60'000'000;  // a deadline flush would time the test out
  serve::BatchScheduler scheduler(&session, opt);

  std::vector<serve::PredictFuture> futs;
  for (int64_t n = 0; n < 4; ++n) futs.push_back(scheduler.SubmitPredict(n));
  for (int64_t n = 0; n < 4; ++n)
    EXPECT_EQ(futs[static_cast<size_t>(n)].Get(), session.PredictNode(n));

  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.full_flushes, 1);
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.max_batch, 4);
}

TEST_F(ServeTest, ShutdownDrainsQueuedRequests) {
  c::InferenceSession session(model_, ds_);
  serve::SchedulerOptions opt;
  opt.max_batch_size = 1024;
  opt.flush_deadline_us = 60'000'000;  // requests can only leave via Stop()
  serve::BatchScheduler scheduler(&session, opt);

  std::vector<serve::PredictFuture> futs;
  for (int64_t n = 0; n < 32; ++n) futs.push_back(scheduler.SubmitPredict(n));
  scheduler.Stop();

  for (int64_t n = 0; n < 32; ++n) {
    ASSERT_TRUE(futs[static_cast<size_t>(n)].Ready());
    EXPECT_EQ(futs[static_cast<size_t>(n)].Get(), session.PredictNode(n));
  }
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.shutdown_flushes, 1);
  EXPECT_EQ(stats.requests, 32);
}

TEST_F(ServeTest, SubmitAfterStopResolvesTypedShutdownRejection) {
  c::InferenceSession session(model_, ds_);
  serve::BatchScheduler scheduler(&session);
  scheduler.Stop();

  // Every post-stop Submit must hand back a VALID future that resolves
  // immediately with kShuttingDown — an invalid future (or a hang) would
  // force every caller to special-case shutdown.
  serve::PredictFuture p = scheduler.SubmitPredict(0);
  ASSERT_TRUE(p.valid());
  ASSERT_TRUE(p.Ready());
  EXPECT_EQ(p.Wait().code, serve::StatusCode::kShuttingDown);
  int64_t cls = -7;
  EXPECT_EQ(p.Get(&cls).code, serve::StatusCode::kShuttingDown);
  EXPECT_EQ(cls, -7) << "result slot must stay untouched on failure";

  serve::LogitsRowFuture row = scheduler.SubmitLogitsRow(1);
  ASSERT_TRUE(row.valid());
  EXPECT_EQ(row.Wait().code, serve::StatusCode::kShuttingDown);

  serve::ExplainFuture ex = scheduler.SubmitExplain(2, /*top_k=*/3);
  ASSERT_TRUE(ex.valid());
  EXPECT_EQ(ex.Wait().code, serve::StatusCode::kShuttingDown);

  const int64_t nodes[2] = {3, 4};
  std::vector<serve::PredictFuture> outs(2);
  EXPECT_EQ(scheduler.SubmitPredictStream(nodes, 2, outs.data()), 0);
  for (auto& fut : outs) {
    ASSERT_TRUE(fut.valid());
    EXPECT_EQ(fut.Wait().code, serve::StatusCode::kShuttingDown);
  }
  EXPECT_EQ(scheduler.stats().rejected, 5);
}

TEST_F(ServeTest, ConcurrentEnqueueMatchesDirectPathBitwise) {
  c::InferenceSession session(model_, ds_);
  const t::Tensor direct = session.Logits();

  serve::SchedulerOptions opt;
  opt.max_batch_size = 16;
  opt.flush_deadline_us = 200;
  serve::BatchScheduler scheduler(&session, opt);

  constexpr int kThreads = 4;
  constexpr int64_t kPerThread = 64;
  std::atomic<int64_t> mismatches{0};
  std::vector<std::thread> clients;
  for (int tid = 0; tid < kThreads; ++tid) {
    clients.emplace_back([&, tid] {
      std::vector<serve::LogitsRowFuture> rows;
      std::vector<serve::PredictFuture> classes;
      std::vector<int64_t> nodes;
      for (int64_t q = 0; q < kPerThread; ++q) {
        const int64_t node = (tid * 131 + q * 17) % num_nodes();
        nodes.push_back(node);
        rows.push_back(scheduler.SubmitLogitsRow(node));
        classes.push_back(scheduler.SubmitPredict(node));
      }
      for (size_t i = 0; i < nodes.size(); ++i) {
        const std::vector<float> row = rows[i].Get();
        const float* want = direct.RowPtr(nodes[i]);
        bool ok = static_cast<int64_t>(row.size()) == direct.cols();
        for (int64_t col = 0; ok && col < direct.cols(); ++col)
          ok = row[static_cast<size_t>(col)] == want[col];  // bitwise
        if (!ok) mismatches.fetch_add(1);
        if (classes[i].Get() != session.PredictNode(nodes[i]))
          mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(scheduler.stats().requests, kThreads * kPerThread * 2);
}

TEST_F(ServeTest, ScheduledExplainMatchesDirectExplain) {
  c::InferenceSession session(model_, ds_);
  serve::SchedulerOptions opt;
  opt.flush_deadline_us = 100;
  serve::BatchScheduler scheduler(&session, opt);

  for (int64_t node = 0; node < 8; ++node) {
    serve::ExplainFuture fut = scheduler.SubmitExplain(node, /*top_k=*/5);
    const auto direct = session.ExplainNode(node, /*top_k=*/5);
    const auto scheduled = fut.Get();
    EXPECT_EQ(scheduled.neighbors, direct.neighbors);
    EXPECT_EQ(scheduled.scores, direct.scores);
  }
}

TEST_F(ServeTest, QueueWaitAndBatchSizeHistogramsPopulate) {
  auto& registry = obs::MetricsRegistry::Get();
  obs::Histogram& wait_hist = registry.GetHistogram(
      "ses.sched.queue_wait_us", obs::Histogram::DefaultLatencyEdgesUs());
  obs::Histogram& size_hist = registry.GetHistogram(
      "ses.sched.batch_size", obs::Histogram::ExponentialEdges(1.0, 2.0, 12));
  const int64_t wait_before = wait_hist.Count();
  const int64_t size_before = size_hist.Count();

  c::InferenceSession session(model_, ds_);
  serve::SchedulerOptions opt;
  opt.max_batch_size = 8;
  // Only the full flush may seal: under sanitizers the 8 submits can take
  // longer than the default deadline, which would split the batch in two.
  opt.flush_deadline_us = 60'000'000;
  serve::BatchScheduler scheduler(&session, opt);
  std::vector<serve::PredictFuture> futs;
  for (int64_t n = 0; n < 8; ++n) futs.push_back(scheduler.SubmitPredict(n));
  for (auto& fut : futs) fut.Get();

  EXPECT_EQ(wait_hist.Count() - wait_before, 8);   // one wait per request
  EXPECT_EQ(size_hist.Count() - size_before, 1);   // one size per batch
}

TEST_F(ServeTest, TraceIdPropagatesFromEnqueueToWorkerSpan) {
  obs::EnableTracing(true);
  obs::ResetTracing();
  c::InferenceSession session(model_, ds_);
  serve::SchedulerOptions opt;
  opt.flush_deadline_us = 100;
  serve::BatchScheduler scheduler(&session, opt);

  uint64_t client_id = 0;
  {
    obs::RequestScope rs("client.predict");
    client_id = rs.trace_id();
    serve::PredictFuture fut = scheduler.SubmitPredict(1);
    EXPECT_EQ(fut.trace_id(), client_id);  // enqueue captured the caller's id
    fut.Get();
  }
  scheduler.Stop();
  obs::EnableTracing(false);

  bool worker_span_joined = false;
  for (const auto& ev : obs::SnapshotEvents())
    if (std::string(ev.label) == "sched/complete" && ev.trace_id == client_id)
      worker_span_joined = true;
  EXPECT_TRUE(worker_span_joined);
  obs::ResetTracing();
}

TEST_F(ServeTest, SubmitWithoutRequestScopeAllocatesFreshTraceIds) {
  c::InferenceSession session(model_, ds_);
  serve::BatchScheduler scheduler(&session);
  serve::PredictFuture a = scheduler.SubmitPredict(0);
  serve::PredictFuture b = scheduler.SubmitPredict(1);
  EXPECT_NE(a.trace_id(), 0u);
  EXPECT_NE(b.trace_id(), 0u);
  EXPECT_NE(a.trace_id(), b.trace_id());
  a.Get();
  b.Get();
}

// --- request forensics (DESIGN.md §15) ----------------------------------------

/// Extracts the number following `key` in a JSON line (no full parser needed:
/// the access log writes flat numeric fields).
double JsonNumberAfter(const std::string& line, const std::string& key) {
  const size_t pos = line.find(key);
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << line;
  if (pos == std::string::npos) return -1.0;
  return std::stod(line.substr(pos + key.size()));
}

TEST_F(ServeTest, AccessLogCarriesMonotonicStageOffsets) {
  c::InferenceSession session(model_, ds_);
  const std::string path = ::testing::TempDir() + "/sched_access_log.jsonl";
  ASSERT_TRUE(obs::AccessLog::Get().Open(path));
  {
    serve::SchedulerOptions opt;
    opt.max_batch_size = 4;
    opt.flush_deadline_us = 200;
    serve::BatchScheduler scheduler(&session, opt);
    std::vector<serve::PredictFuture> futs;
    for (int64_t n = 0; n < 8; ++n) futs.push_back(scheduler.SubmitPredict(n));
    for (auto& fut : futs) fut.Get();
    scheduler.Stop();
  }
  obs::AccessLog::Get().Close();

  std::ifstream in(path);
  int staged = 0;
  for (std::string line; std::getline(in, line);) {
    // The worker's inner session scopes (infer.predict_many) log too; only
    // scheduler-completed lines carry the stage block.
    if (line.find("\"op\":\"sched.predict\"") == std::string::npos) continue;
    EXPECT_NE(line.find("\"reason\":\"ok\""), std::string::npos) << line;
    ASSERT_NE(line.find("\"stages_us\":{"), std::string::npos) << line;
    const double admit = JsonNumberAfter(line, "\"admit\":");
    const double seal = JsonNumberAfter(line, "\"seal\":");
    const double fwd_start = JsonNumberAfter(line, "\"forward_start\":");
    const double fwd_end = JsonNumberAfter(line, "\"forward_end\":");
    const double resolve = JsonNumberAfter(line, "\"resolve\":");
    const double latency = JsonNumberAfter(line, "\"latency_us\":");
    // Offsets from submit, monotonically non-decreasing along the critical
    // path. `resolve` is stamped moments after the e2e latency measurement
    // (same batch, a few histogram flushes apart), so it agrees with
    // latency_us up to scheduling noise — a unit mix-up would not.
    EXPECT_GE(admit, 0.0);
    EXPECT_GE(seal, admit);
    EXPECT_GE(fwd_start, seal);
    EXPECT_GE(fwd_end, fwd_start);
    EXPECT_GE(resolve, fwd_end);
    EXPECT_NEAR(latency, resolve, 0.5 * latency + 50.0);
    ++staged;
  }
  EXPECT_EQ(staged, 8) << "one staged line per scheduled request";
}

TEST_F(ServeTest, StageHistogramsSeeEveryScheduledRequest) {
  auto& registry = obs::MetricsRegistry::Get();
  const char* names[5] = {"ses.sched.stage.admit_us", "ses.sched.stage.seal_us",
                          "ses.sched.stage.queue_us",
                          "ses.sched.stage.forward_us",
                          "ses.sched.stage.resolve_us"};
  obs::Histogram* hists[5];
  int64_t before[5];
  for (int i = 0; i < 5; ++i) {
    hists[i] = &registry.GetHistogram(names[i],
                                      obs::Histogram::DefaultLatencyEdgesUs());
    before[i] = hists[i]->Count();
  }

  c::InferenceSession session(model_, ds_);
  serve::SchedulerOptions opt;
  opt.max_batch_size = 4;
  opt.flush_deadline_us = 200;
  serve::BatchScheduler scheduler(&session, opt);
  std::vector<serve::PredictFuture> futs;
  for (int64_t n = 0; n < 8; ++n) futs.push_back(scheduler.SubmitPredict(n));
  for (auto& fut : futs) fut.Get();

  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(hists[i]->Count() - before[i], 8)
        << names[i] << " must see one observation per request";
}

TEST_F(ServeTest, SchedulerFeedsFlightRecorderWithJoinableStageTimestamps) {
  obs::FlightRecorder::Get().ResetForTest();
  obs::EnableTracing(true);
  obs::ResetTracing();
  c::InferenceSession session(model_, ds_);
  serve::SchedulerOptions opt;
  opt.max_batch_size = 4;
  opt.flush_deadline_us = 200;
  serve::BatchScheduler scheduler(&session, opt);
  std::vector<serve::PredictFuture> futs;
  std::vector<uint64_t> ids;
  for (int64_t n = 0; n < 8; ++n) {
    futs.push_back(scheduler.SubmitPredict(n));
    ids.push_back(futs.back().trace_id());
  }
  for (auto& fut : futs) fut.Get();
  scheduler.Stop();
  obs::EnableTracing(false);

  // Every scheduled request was fully attributed: six monotonically
  // non-decreasing trace-epoch timestamps, reason "ok", and a trace id that
  // joins the futures handed to the client.
  int sched_records = 0;
  for (const auto& rec : obs::FlightRecorder::Get().Snapshot()) {
    if (std::strcmp(rec.op, "sched.predict") != 0) continue;  // inner scopes
    ++sched_records;
    EXPECT_NE(std::find(ids.begin(), ids.end(), rec.trace_id), ids.end());
    EXPECT_STREQ(rec.reason, "ok");
    EXPECT_FALSE(rec.error);
    EXPECT_LE(rec.submit_us, rec.admit_us);
    EXPECT_LE(rec.admit_us, rec.seal_us);
    EXPECT_LE(rec.seal_us, rec.forward_start_us);
    EXPECT_LE(rec.forward_start_us, rec.forward_end_us);
    EXPECT_LE(rec.forward_end_us, rec.resolve_us);
    EXPECT_DOUBLE_EQ(rec.e2e_us, rec.resolve_us - rec.submit_us);
  }
  EXPECT_EQ(sched_records, 8);

  // The per-stage spans landed in the Chrome trace under the same ids.
  const char* stage_labels[5] = {"sched/stage/admit", "sched/stage/seal",
                                 "sched/stage/queue", "sched/stage/forward",
                                 "sched/stage/resolve"};
  int joined_stage_spans = 0;
  for (const auto& ev : obs::SnapshotEvents()) {
    for (const char* label : stage_labels) {
      if (std::strcmp(ev.label, label) == 0 &&
          std::find(ids.begin(), ids.end(), ev.trace_id) != ids.end())
        ++joined_stage_spans;
    }
  }
  EXPECT_EQ(joined_stage_spans, 5 * 8)
      << "five stage spans per request, each tagged with its trace id";
  obs::ResetTracing();

  // The e2e histogram's exemplars name requests from this run: scraping
  // /metrics after the fact still identifies a concrete slow request.
  obs::Histogram& e2e = obs::MetricsRegistry::Get().GetHistogram(
      "ses.sched.e2e_us", obs::Histogram::DefaultLatencyEdgesUs());
  obs::Histogram::Exemplar ex;
  int joined_exemplars = 0;
  for (size_t b = 0; b <= e2e.edges().size(); ++b) {
    if (!e2e.ReadExemplar(b, &ex)) continue;
    if (std::find(ids.begin(), ids.end(), ex.trace_id) != ids.end())
      ++joined_exemplars;
  }
  EXPECT_GE(joined_exemplars, 1)
      << "at least one bucket's exemplar joins this run's trace ids";
  obs::FlightRecorder::Get().ResetForTest();
}

// --- deadlines ---------------------------------------------------------------

TEST_F(ServeTest, NegativeDeadlineResolvesExpiredWithoutExecuting) {
  c::InferenceSession session(model_, ds_);
  serve::BatchScheduler scheduler(&session);
  serve::SubmitOptions submit;
  submit.deadline_us = -1.0;  // already expired at submission
  serve::PredictFuture fut = scheduler.SubmitPredict(0, submit);
  ASSERT_TRUE(fut.valid());
  EXPECT_EQ(fut.Wait().code, serve::StatusCode::kDeadlineExceeded);
  int64_t cls = -7;
  EXPECT_EQ(fut.Get(&cls).code, serve::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(cls, -7);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.expired, 1) << "must expire in queue, pre-execution";
  EXPECT_EQ(stats.expired_inflight, 0);
  EXPECT_EQ(stats.internal_errors, 0);
}

TEST_F(ServeTest, DefaultDeadlineAppliesAndExplicitDeadlineOverrides) {
  c::InferenceSession session(model_, ds_);
  serve::SchedulerOptions opt;
  opt.max_batch_size = 2;
  opt.flush_deadline_us = 60'000'000;  // only the full flush may seal
  opt.default_deadline_us = 50'000;    // 50ms for requests without one
  opt.fault_plan = robust::FaultPlan::Parse("worker_stall:step=0,ms=250");
  serve::BatchScheduler scheduler(&session, opt);

  serve::PredictFuture defaulted = scheduler.SubmitPredict(2);
  serve::SubmitOptions generous;
  generous.deadline_us = 60'000'000.0;  // overrides the 50ms default
  serve::PredictFuture overridden = scheduler.SubmitPredict(3, generous);

  // The stalled worker dequeues the batch well past the 50ms default: the
  // defaulted request is doomed work and must be dropped before the forward,
  // while its batchmate (same batch, same stall) survives on its own longer
  // deadline.
  EXPECT_EQ(defaulted.Wait().code, serve::StatusCode::kDeadlineExceeded);
  int64_t cls = -1;
  ASSERT_EQ(overridden.Get(&cls).code, serve::StatusCode::kOk);
  EXPECT_EQ(cls, session.PredictNode(3));
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.expired, 1);
  EXPECT_EQ(stats.expired_inflight, 0);
}

TEST_F(ServeTest, QueueExpiredRequestIsDroppedBeforeForward) {
  c::InferenceSession session(model_, ds_);
  serve::SchedulerOptions opt;
  opt.max_batch_size = 2;
  opt.flush_deadline_us = 60'000'000;
  opt.fault_plan = robust::FaultPlan::Parse("worker_stall:step=0,ms=250");
  serve::BatchScheduler scheduler(&session, opt);

  serve::SubmitOptions tight;
  tight.deadline_us = 50'000.0;
  serve::PredictFuture doomed = scheduler.SubmitPredict(1, tight);
  serve::PredictFuture safe = scheduler.SubmitPredict(4);  // no deadline

  EXPECT_EQ(doomed.Wait().code, serve::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(safe.Get(), session.PredictNode(4));
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.expired, 1);
  EXPECT_EQ(stats.expired_inflight, 0);
}

TEST_F(ServeTest, MidFlightExpiryResolvesDeadlineExceeded) {
  c::InferenceSession session(model_, ds_);
  serve::SchedulerOptions opt;
  opt.max_batch_size = 1;  // seals and dispatches immediately
  opt.fault_plan = robust::FaultPlan::Parse("slow_forward:step=0,ms=250");
  serve::BatchScheduler scheduler(&session, opt);

  // The request is live at dequeue (deadline 100ms ahead) but the forward
  // takes 250ms: the contract is "within the deadline", so the completion
  // check must still expire it — as inflight, not queue, expiry.
  serve::SubmitOptions submit;
  submit.deadline_us = 100'000.0;
  serve::PredictFuture fut = scheduler.SubmitPredict(0, submit);
  EXPECT_EQ(fut.Wait().code, serve::StatusCode::kDeadlineExceeded);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.expired_inflight, 1);
  EXPECT_EQ(stats.expired, 0);
}

// --- injected serving faults -------------------------------------------------

TEST_F(ServeTest, PoisonedRequestFailsAloneWhileBatchmatesSucceed) {
  c::InferenceSession session(model_, ds_);
  serve::SchedulerOptions opt;
  opt.max_batch_size = 4;
  opt.flush_deadline_us = 60'000'000;
  opt.fault_plan = robust::FaultPlan::Parse("poison_request:step=2");
  serve::BatchScheduler scheduler(&session, opt);

  std::vector<serve::PredictFuture> futs;
  for (int64_t n = 0; n < 4; ++n) futs.push_back(scheduler.SubmitPredict(n));

  // Accept-order request 2 is poisoned: it alone resolves kInternal; its
  // batchmates still go through the (partitioned) batched forward and match
  // the direct path bitwise.
  int64_t cls = -7;
  EXPECT_EQ(futs[2].Get(&cls).code, serve::StatusCode::kInternal);
  EXPECT_EQ(cls, -7);
  for (int64_t n : {0, 1, 3})
    EXPECT_EQ(futs[static_cast<size_t>(n)].Get(), session.PredictNode(n));
  EXPECT_EQ(scheduler.stats().internal_errors, 1);
}

TEST_F(ServeTest, ThrowingBatchResolvesInternalAndWorkerSurvives) {
  c::InferenceSession session(model_, ds_);
  serve::SchedulerOptions opt;
  opt.max_batch_size = 2;
  opt.flush_deadline_us = 60'000'000;
  opt.fault_plan = robust::FaultPlan::Parse("serve_throw:step=0");
  serve::BatchScheduler scheduler(&session, opt);

  serve::PredictFuture a = scheduler.SubmitPredict(0);
  serve::PredictFuture b = scheduler.SubmitPredict(1);
  EXPECT_EQ(a.Wait().code, serve::StatusCode::kInternal);
  EXPECT_EQ(b.Wait().code, serve::StatusCode::kInternal);

  // The worker must survive the throw: the next batch executes normally.
  serve::PredictFuture c1 = scheduler.SubmitPredict(2);
  serve::PredictFuture d = scheduler.SubmitPredict(3);
  EXPECT_EQ(c1.Get(), session.PredictNode(2));
  EXPECT_EQ(d.Get(), session.PredictNode(3));
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.internal_errors, 2);
  EXPECT_EQ(stats.batches, 2);
}

TEST_F(ServeTest, StalledWorkerStillDrainsCleanlyOnStop) {
  c::InferenceSession session(model_, ds_);
  serve::SchedulerOptions opt;
  opt.max_batch_size = 1024;
  opt.flush_deadline_us = 60'000'000;  // requests can only leave via Stop()
  opt.fault_plan = robust::FaultPlan::Parse("worker_stall:step=0,ms=100");
  serve::BatchScheduler scheduler(&session, opt);

  std::vector<serve::PredictFuture> futs;
  for (int64_t n = 0; n < 8; ++n) futs.push_back(scheduler.SubmitPredict(n));
  scheduler.Stop();  // must wait out the stall, not abandon the batch

  for (int64_t n = 0; n < 8; ++n) {
    ASSERT_TRUE(futs[static_cast<size_t>(n)].Ready());
    EXPECT_EQ(futs[static_cast<size_t>(n)].Get(), session.PredictNode(n));
  }
  EXPECT_EQ(scheduler.stats().shutdown_flushes, 1);
}

// --- admission control -------------------------------------------------------

/// Spins until the worker has popped every queued request (the live
/// queue-depth gauge reads 0), so a test can line up admission decisions
/// against a known queue state while the worker is held in a stall fault.
void WaitForEmptyQueue() {
  auto& gauge = obs::MetricsRegistry::Get().GetGauge("ses.sched.queue_depth");
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (gauge.Value() != 0.0 && std::chrono::steady_clock::now() < give_up)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(gauge.Value(), 0.0) << "worker never drained the queue";
}

TEST_F(ServeTest, AdmissionShedResolvesTypedOverloadedWithRetryHint) {
  c::InferenceSession session(model_, ds_);
  serve::SchedulerOptions opt;
  opt.max_batch_size = 1;  // every submit seals its own batch
  opt.admission = std::make_shared<serve::BoundedQueueAdmission>(
      /*max_queued_requests=*/2, /*retry_after_us=*/750);
  opt.fault_plan = robust::FaultPlan::Parse("worker_stall:step=0,ms=400");
  serve::BatchScheduler scheduler(&session, opt);

  // Prime one request and wait until the worker holds it in the stall: the
  // queue is now empty and the worker is busy for 400ms.
  serve::PredictFuture primed = scheduler.SubmitPredict(0);
  WaitForEmptyQueue();

  serve::PredictFuture first = scheduler.SubmitPredict(1);    // queued: 1
  serve::PredictFuture second = scheduler.SubmitPredict(2);   // queued: 2
  serve::PredictFuture shed = scheduler.SubmitPredict(3);     // at the bound
  ASSERT_TRUE(shed.valid());
  ASSERT_TRUE(shed.Ready()) << "shed must be an immediate rejection";
  const serve::Status status = shed.Wait();
  EXPECT_EQ(status.code, serve::StatusCode::kOverloaded);
  EXPECT_EQ(status.retry_after_us, 750);

  // Admitted work is unaffected once the stall clears.
  EXPECT_EQ(primed.Get(), session.PredictNode(0));
  EXPECT_EQ(first.Get(), session.PredictNode(1));
  EXPECT_EQ(second.Get(), session.PredictNode(2));
  EXPECT_EQ(scheduler.stats().shed, 1);
}

TEST_F(ServeTest, StreamShedSlotsGetTypedRejectionFutures) {
  c::InferenceSession session(model_, ds_);
  serve::SchedulerOptions opt;
  opt.max_batch_size = 1;
  opt.admission = std::make_shared<serve::BoundedQueueAdmission>(
      /*max_queued_requests=*/1, /*retry_after_us=*/333);
  opt.fault_plan = robust::FaultPlan::Parse("worker_stall:step=0,ms=400");
  serve::BatchScheduler scheduler(&session, opt);

  serve::PredictFuture primed = scheduler.SubmitPredict(0);
  WaitForEmptyQueue();

  // One slot fits under the bound; the rest of the stream must come back as
  // immediate typed rejections in their slots, not silently dropped.
  const int64_t nodes[6] = {1, 2, 3, 4, 5, 6};
  std::vector<serve::PredictFuture> outs(6);
  EXPECT_EQ(scheduler.SubmitPredictStream(nodes, 6, outs.data()), 1);
  EXPECT_EQ(outs[0].Get(), session.PredictNode(1));
  for (size_t i = 1; i < 6; ++i) {
    ASSERT_TRUE(outs[i].valid());
    const serve::Status status = outs[i].Wait();
    EXPECT_EQ(status.code, serve::StatusCode::kOverloaded);
    EXPECT_EQ(status.retry_after_us, 333);
  }
  EXPECT_EQ(primed.Get(), session.PredictNode(0));
  EXPECT_EQ(scheduler.stats().shed, 5);
}

// --- degraded mode -----------------------------------------------------------

TEST_F(ServeTest, ForcedDegradedServesWarmPredictsFromCacheAndShedsExplain) {
  c::InferenceSession session(model_, ds_);
  session.Logits();  // warm the memoized-logits cache
  serve::SchedulerOptions opt;
  opt.degraded.probe_every = 0;  // no canaries: every predict may cache-serve
  opt.degraded.retry_after_us = 777;
  serve::BatchScheduler scheduler(&session, opt);
  scheduler.ForceDegradedForTest(true);

  serve::PredictFuture fut = scheduler.SubmitPredict(5);
  ASSERT_TRUE(fut.Ready()) << "warm degraded predict must never queue";
  EXPECT_EQ(fut.Get(), session.PredictNode(5));
  EXPECT_EQ(scheduler.stats().degraded_served, 1);

  serve::ExplainFuture ex = scheduler.SubmitExplain(5, /*top_k=*/3);
  ASSERT_TRUE(ex.Ready());
  const serve::Status status = ex.Wait();
  EXPECT_EQ(status.code, serve::StatusCode::kOverloaded);
  EXPECT_EQ(status.retry_after_us, 777);

  // Leaving degraded mode restores normal explain service.
  scheduler.ForceDegradedForTest(false);
  serve::ExplainFuture ok = scheduler.SubmitExplain(5, /*top_k=*/3);
  const auto direct = session.ExplainNode(5, /*top_k=*/3);
  EXPECT_EQ(ok.Get().neighbors, direct.neighbors);
}

TEST_F(ServeTest, ColdCacheDegradedPredictFallsThroughToTheQueue) {
  c::InferenceSession session(model_, ds_);  // cache deliberately cold
  serve::SchedulerOptions opt;
  opt.degraded.probe_every = 0;
  serve::BatchScheduler scheduler(&session, opt);
  scheduler.ForceDegradedForTest(true);

  // Cold cache: the degraded fast path cannot answer, so the request takes
  // the normal queue (which warms the cache as a side effect of executing).
  serve::PredictFuture cold = scheduler.SubmitPredict(0);
  int64_t cls = -1;
  ASSERT_EQ(cold.Get(&cls).code, serve::StatusCode::kOk);
  EXPECT_EQ(cls, session.PredictNode(0));
  EXPECT_EQ(scheduler.stats().degraded_served, 0);

  serve::PredictFuture warm = scheduler.SubmitPredict(1);
  ASSERT_TRUE(warm.Ready()) << "cache is warm now: must serve immediately";
  EXPECT_EQ(warm.Get(), session.PredictNode(1));
  EXPECT_EQ(scheduler.stats().degraded_served, 1);
}

TEST_F(ServeTest, CanaryProbesKeepFlowingThroughTheQueueWhileDegraded) {
  c::InferenceSession session(model_, ds_);
  session.Logits();
  serve::SchedulerOptions opt;
  opt.degraded.probe_every = 1;  // every degraded predict is a canary
  serve::BatchScheduler scheduler(&session, opt);
  scheduler.ForceDegradedForTest(true);

  for (int64_t n = 0; n < 3; ++n)
    EXPECT_EQ(scheduler.SubmitPredict(n).Get(), session.PredictNode(n));
  // All three went through the queue (canaries), none from the cache — the
  // queue-wait signal keeps flowing, so recovery stays observable.
  EXPECT_EQ(scheduler.stats().degraded_served, 0);
  EXPECT_GE(scheduler.stats().batches, 1);
}

TEST_F(ServeTest, SustainedQueueWaitBurnEntersDegradedMode) {
  c::InferenceSession session(model_, ds_);
  session.Logits();
  serve::SchedulerOptions opt;
  // A queue-wait budget no real dequeue can meet: the first batch breaches,
  // burn = (1/1) / (1 - 0.5) = 2.0 >= enter threshold, and with
  // enter_consecutive = 1 the scheduler is degraded by the time the first
  // future resolves (completion publishes after the state update).
  opt.queue_wait_budget_us = 0.5;
  opt.queue_wait_target = 0.5;
  opt.queue_wait_window = 4;
  opt.degraded.enabled = true;
  opt.degraded.enter_burn_rate = 1.0;
  opt.degraded.exit_burn_rate = 0.5;
  opt.degraded.enter_consecutive = 1;
  opt.degraded.exit_consecutive = 1'000'000;  // never leave during the test
  opt.degraded.probe_every = 0;
  opt.degraded.retry_after_us = 555;
  serve::BatchScheduler scheduler(&session, opt);

  EXPECT_EQ(scheduler.SubmitPredict(0).Get(), session.PredictNode(0));
  EXPECT_TRUE(scheduler.degraded());
  EXPECT_EQ(scheduler.stats().degraded_entries, 1);

  // Degraded behavior is live: warm predict from cache, explain shed.
  serve::PredictFuture cached = scheduler.SubmitPredict(1);
  ASSERT_TRUE(cached.Ready());
  EXPECT_EQ(cached.Get(), session.PredictNode(1));
  EXPECT_EQ(scheduler.stats().degraded_served, 1);
  const serve::Status shed = scheduler.SubmitExplain(1, 3).Wait();
  EXPECT_EQ(shed.code, serve::StatusCode::kOverloaded);
  EXPECT_EQ(shed.retry_after_us, 555);
}

// --- shutdown races ----------------------------------------------------------

TEST_F(ServeTest, SubmitsRacingStopAllResolveTyped) {
  c::InferenceSession session(model_, ds_);
  serve::SchedulerOptions opt;
  opt.max_batch_size = 8;
  serve::BatchScheduler scheduler(&session, opt);

  constexpr int kThreads = 4;
  constexpr int64_t kPerThread = 64;
  std::atomic<int64_t> ok{0}, shutdown{0}, other{0};
  std::vector<std::thread> clients;
  for (int tid = 0; tid < kThreads; ++tid) {
    clients.emplace_back([&, tid] {
      for (int64_t q = 0; q < kPerThread; ++q) {
        serve::PredictFuture fut =
            scheduler.SubmitPredict((tid * 131 + q * 17) % num_nodes());
        if (!fut.valid()) {
          other.fetch_add(1);
          continue;
        }
        switch (fut.Wait().code) {
          case serve::StatusCode::kOk: ok.fetch_add(1); break;
          case serve::StatusCode::kShuttingDown: shutdown.fetch_add(1); break;
          default: other.fetch_add(1); break;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  scheduler.Stop();  // races the submitting threads
  for (auto& th : clients) th.join();

  // Every single submission resolved, with exactly one of the two legal
  // codes, and the scheduler's books agree with the clients'.
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(ok.load() + shutdown.load(), kThreads * kPerThread);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.requests, ok.load());
  EXPECT_EQ(stats.rejected, shutdown.load());
}

// --- admission / retry policy units ------------------------------------------

TEST(AdmissionTest, BoundedQueueShedsAtTheBound) {
  serve::BoundedQueueAdmission admission(/*max_queued_requests=*/4,
                                         /*retry_after_us=*/999);
  EXPECT_TRUE(admission.Admit(serve::OpKind::kPredict, 3).admit);
  const serve::AdmissionDecision shed =
      admission.Admit(serve::OpKind::kExplain, 4);
  EXPECT_FALSE(shed.admit);
  EXPECT_STREQ(shed.reason, "queue_depth");
  EXPECT_EQ(shed.retry_after_us, 999);
  EXPECT_NE(admission.DebugState().find("bounded_queue"), std::string::npos);
}

TEST(AdmissionTest, BurnRateShedsLowestPriorityOpsFirst) {
  serve::BurnRateAdmission::Options opt;
  opt.shed_explain_burn_rate = 1.0;
  opt.shed_all_burn_rate = 6.0;
  opt.max_queued_requests = 10;
  opt.base_retry_after_us = 100;
  serve::BurnRateAdmission admission(opt);

  // No burn: everything is admitted.
  EXPECT_TRUE(admission.Admit(serve::OpKind::kExplain, 0).admit);

  // Between the thresholds: recomputable ops shed, Predict survives, and the
  // hint scales with how far past the threshold the burn is (2x -> 200us).
  admission.ObserveBurnRate(2.0);
  EXPECT_TRUE(admission.Admit(serve::OpKind::kPredict, 0).admit);
  const serve::AdmissionDecision explain_shed =
      admission.Admit(serve::OpKind::kExplain, 0);
  EXPECT_FALSE(explain_shed.admit);
  EXPECT_STREQ(explain_shed.reason, "burn_rate_explain");
  EXPECT_EQ(explain_shed.retry_after_us, 200);
  EXPECT_FALSE(admission.Admit(serve::OpKind::kLogitsRow, 0).admit);

  // Above shed_all: even Predict sheds, hinted at 8/6 of the base.
  admission.ObserveBurnRate(8.0);
  const serve::AdmissionDecision all_shed =
      admission.Admit(serve::OpKind::kPredict, 0);
  EXPECT_FALSE(all_shed.admit);
  EXPECT_STREQ(all_shed.reason, "burn_rate");
  EXPECT_EQ(all_shed.retry_after_us, 133);

  // The scaling factor is capped so the hint stays a retry, not a goodbye.
  admission.ObserveBurnRate(1000.0);
  EXPECT_EQ(admission.Admit(serve::OpKind::kPredict, 0).retry_after_us, 6400);

  // The hard queue bound backstops the adaptive part even at zero burn.
  admission.ObserveBurnRate(0.0);
  const serve::AdmissionDecision backstop =
      admission.Admit(serve::OpKind::kPredict, 10);
  EXPECT_FALSE(backstop.admit);
  EXPECT_STREQ(backstop.reason, "queue_depth");
}

TEST(AdmissionTest, DegradedStateHysteresisOnBothEdges) {
  serve::DegradedModeOptions opt;
  opt.enter_burn_rate = 2.0;
  opt.exit_burn_rate = 0.5;
  opt.enter_consecutive = 2;
  opt.exit_consecutive = 3;
  serve::DegradedState state(opt);

  // One hot observation is not enough, and a mid-band one resets the streak.
  EXPECT_FALSE(state.Update(3.0));
  EXPECT_FALSE(state.Update(1.0));  // mid-band: streak lost
  EXPECT_FALSE(state.Update(3.0));
  EXPECT_TRUE(state.Update(2.0));  // >= enter counts; streak of 2 -> enter
  EXPECT_EQ(state.entries(), 1);

  // Mid-band holds the current state; a hot blip resets the cool streak.
  EXPECT_TRUE(state.Update(1.0));
  EXPECT_TRUE(state.Update(0.4));
  EXPECT_TRUE(state.Update(0.4));
  EXPECT_TRUE(state.Update(3.0));  // cool streak lost
  EXPECT_TRUE(state.Update(0.4));
  EXPECT_TRUE(state.Update(0.4));
  EXPECT_FALSE(state.Update(0.4));  // third consecutive cool -> exit

  // Re-entry counts a second transition.
  EXPECT_FALSE(state.Update(5.0));
  EXPECT_TRUE(state.Update(5.0));
  EXPECT_EQ(state.entries(), 2);
}

TEST(RetryTest, BackoffGrowsCapsFloorsOnHintAndJitters) {
  serve::RetryPolicy policy;
  policy.initial_backoff_us = 100;
  policy.multiplier = 2.0;
  policy.max_backoff_us = 1000;
  policy.jitter = 0.5;

  // u = 0.5 makes the spread exactly 1.0: pure exponential readings.
  EXPECT_EQ(serve::RetryDelayUs(policy, 0, 0, 0.5), 100);
  EXPECT_EQ(serve::RetryDelayUs(policy, 2, 0, 0.5), 400);
  EXPECT_EQ(serve::RetryDelayUs(policy, 5, 0, 0.5), 1000);  // capped

  // The server hint is a floor backoff can never undercut.
  EXPECT_EQ(serve::RetryDelayUs(policy, 0, 5000, 0.5), 5000);

  // Full jitter spread: +-50% around the base.
  EXPECT_EQ(serve::RetryDelayUs(policy, 0, 0, 0.0), 50);
  EXPECT_EQ(serve::RetryDelayUs(policy, 0, 0, 0.999), 149);
}

// --- batched session APIs the scheduler dispatches to -----------------------

TEST_F(ServeTest, PredictManyMatchesPredictNode) {
  c::InferenceSession session(model_, ds_);
  std::vector<int64_t> nodes = {0, 5, 3, 5, 1};  // duplicates allowed
  const std::vector<int64_t> batched = session.PredictMany(nodes);
  ASSERT_EQ(batched.size(), nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i)
    EXPECT_EQ(batched[i], session.PredictNode(nodes[i]));
}

TEST_F(ServeTest, GatherLogitsSlicesMemoizedLogitsBitwise) {
  c::InferenceSession session(model_, ds_);
  const t::Tensor all = session.Logits();
  std::vector<int64_t> nodes = {2, 0, num_nodes() - 1};
  const t::Tensor rows = session.GatherLogits(nodes);
  ASSERT_EQ(rows.rows(), static_cast<int64_t>(nodes.size()));
  ASSERT_EQ(rows.cols(), all.cols());
  for (size_t i = 0; i < nodes.size(); ++i)
    for (int64_t col = 0; col < all.cols(); ++col)
      EXPECT_EQ(rows.At(static_cast<int64_t>(i), col), all.At(nodes[i], col));
}

TEST_F(ServeTest, ExplainManyMatchesExplainNode) {
  c::InferenceSession session(model_, ds_);
  std::vector<int64_t> nodes = {0, 7, 4};
  const auto batched = session.ExplainMany(nodes, /*top_k=*/3);
  ASSERT_EQ(batched.size(), nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    const auto direct = session.ExplainNode(nodes[i], /*top_k=*/3);
    EXPECT_EQ(batched[i].neighbors, direct.neighbors);
    EXPECT_EQ(batched[i].scores, direct.scores);
  }
}

// --- kernel-level helpers ----------------------------------------------------

TEST(ArgmaxGatherRowsTest, MatchesPerRowArgmaxWithFirstMaxWinning) {
  t::Tensor a = {{1.0f, 3.0f, 3.0f}, {5.0f, 2.0f, 0.0f}, {0.0f, 0.0f, 7.0f}};
  const int64_t idx[4] = {2, 0, 1, 0};
  const std::vector<int64_t> out = t::ArgmaxGatherRows(a, idx, 4);
  EXPECT_EQ(out, (std::vector<int64_t>{2, 1, 0, 1}));  // ties: first max wins
}

TEST(GatherRowsSpanTest, MatchesVectorOverload) {
  t::Tensor a = {{1.0f, 2.0f}, {3.0f, 4.0f}, {5.0f, 6.0f}};
  const std::vector<int64_t> idx = {2, 2, 0};
  const t::Tensor from_vec = t::GatherRows(a, idx);
  const t::Tensor from_span =
      t::GatherRows(a, idx.data(), static_cast<int64_t>(idx.size()));
  EXPECT_EQ(from_vec.MaxAbsDiff(from_span), 0.0f);
  EXPECT_EQ(from_span.At(0, 0), 5.0f);
  EXPECT_EQ(from_span.At(2, 1), 2.0f);
}

TEST(TopKByScoreTest, SelectsDescendingAndReusesScratch) {
  const float scores[] = {0.1f, 0.9f, 0.5f, 0.7f};
  std::vector<int64_t> scratch, out;
  EXPECT_EQ(ses::graph::TopKByScore(scores, 0, 4, 2, &scratch, &out), 2);
  EXPECT_EQ(out, (std::vector<int64_t>{1, 3}));
  // Same scratch, shorter range with an offset, k larger than n.
  EXPECT_EQ(ses::graph::TopKByScore(scores, 2, 2, 5, &scratch, &out), 2);
  EXPECT_EQ(out, (std::vector<int64_t>{1, 0}));  // 0.7 at local 1, 0.5 at 0
  EXPECT_EQ(ses::graph::TopKByScore(scores, 0, 0, 3, &scratch, &out), 0);
  EXPECT_TRUE(out.empty());
}

}  // namespace
