// Tests for the batched inference scheduler: micro-batch flush policies
// (deadline / max-batch / shutdown), bitwise parity of the scheduled path
// against direct InferenceSession calls under concurrent enqueue, trace-id
// propagation from enqueue to the worker's spans, and the ses.sched.*
// instrument surface.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/inference_session.h"
#include "core/ses_model.h"
#include "data/synthetic.h"
#include "graph/khop.h"
#include "obs/metrics.h"
#include "obs/request.h"
#include "obs/trace.h"
#include "serve/batch_scheduler.h"
#include "tensor/ops.h"

namespace c = ses::core;
namespace t = ses::tensor;
namespace obs = ses::obs;
namespace serve = ses::serve;

namespace {

/// One tiny trained model shared by every scheduler test (training dominates
/// the binary's runtime; the scheduler itself is microseconds per test).
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ses::data::SyntheticOptions opt;
    opt.scale = 0.25;
    ds_ = new ses::data::Dataset(ses::data::MakeSyntheticByName("BAShapes", opt));
    c::SesOptions sopt;
    sopt.backbone = "GCN";
    model_ = new c::SesModel(sopt);
    ses::models::TrainConfig cfg;
    cfg.epochs = 4;
    cfg.hidden = 16;
    cfg.seed = 1;
    model_->Fit(*ds_, cfg);
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
    delete ds_;
    ds_ = nullptr;
  }

  int64_t num_nodes() const { return ds_->graph.num_nodes(); }

  static ses::data::Dataset* ds_;
  static c::SesModel* model_;
};

ses::data::Dataset* ServeTest::ds_ = nullptr;
c::SesModel* ServeTest::model_ = nullptr;

TEST_F(ServeTest, DeadlineFlushWithSingleRequest) {
  c::InferenceSession session(model_, ds_);
  serve::SchedulerOptions opt;
  opt.max_batch_size = 64;     // never reached
  opt.flush_deadline_us = 500; // the deadline must fire instead
  serve::BatchScheduler scheduler(&session, opt);

  const int64_t node = 3;
  serve::PredictFuture fut = scheduler.SubmitPredict(node);
  ASSERT_TRUE(fut.valid());
  EXPECT_EQ(fut.Get(), session.PredictNode(node));

  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.requests, 1);
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.deadline_flushes, 1);
  EXPECT_EQ(stats.full_flushes, 0);
}

TEST_F(ServeTest, MaxBatchFlushDoesNotWaitForDeadline) {
  c::InferenceSession session(model_, ds_);
  serve::SchedulerOptions opt;
  opt.max_batch_size = 4;
  opt.flush_deadline_us = 60'000'000;  // a deadline flush would time the test out
  serve::BatchScheduler scheduler(&session, opt);

  std::vector<serve::PredictFuture> futs;
  for (int64_t n = 0; n < 4; ++n) futs.push_back(scheduler.SubmitPredict(n));
  for (int64_t n = 0; n < 4; ++n)
    EXPECT_EQ(futs[static_cast<size_t>(n)].Get(), session.PredictNode(n));

  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.full_flushes, 1);
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.max_batch, 4);
}

TEST_F(ServeTest, ShutdownDrainsQueuedRequests) {
  c::InferenceSession session(model_, ds_);
  serve::SchedulerOptions opt;
  opt.max_batch_size = 1024;
  opt.flush_deadline_us = 60'000'000;  // requests can only leave via Stop()
  serve::BatchScheduler scheduler(&session, opt);

  std::vector<serve::PredictFuture> futs;
  for (int64_t n = 0; n < 32; ++n) futs.push_back(scheduler.SubmitPredict(n));
  scheduler.Stop();

  for (int64_t n = 0; n < 32; ++n) {
    ASSERT_TRUE(futs[static_cast<size_t>(n)].Ready());
    EXPECT_EQ(futs[static_cast<size_t>(n)].Get(), session.PredictNode(n));
  }
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.shutdown_flushes, 1);
  EXPECT_EQ(stats.requests, 32);
}

TEST_F(ServeTest, SubmitAfterStopReturnsInvalidFuture) {
  c::InferenceSession session(model_, ds_);
  serve::BatchScheduler scheduler(&session);
  scheduler.Stop();
  serve::PredictFuture fut = scheduler.SubmitPredict(0);
  EXPECT_FALSE(fut.valid());
  EXPECT_EQ(scheduler.stats().rejected, 1);
}

TEST_F(ServeTest, ConcurrentEnqueueMatchesDirectPathBitwise) {
  c::InferenceSession session(model_, ds_);
  const t::Tensor direct = session.Logits();

  serve::SchedulerOptions opt;
  opt.max_batch_size = 16;
  opt.flush_deadline_us = 200;
  serve::BatchScheduler scheduler(&session, opt);

  constexpr int kThreads = 4;
  constexpr int64_t kPerThread = 64;
  std::atomic<int64_t> mismatches{0};
  std::vector<std::thread> clients;
  for (int tid = 0; tid < kThreads; ++tid) {
    clients.emplace_back([&, tid] {
      std::vector<serve::LogitsRowFuture> rows;
      std::vector<serve::PredictFuture> classes;
      std::vector<int64_t> nodes;
      for (int64_t q = 0; q < kPerThread; ++q) {
        const int64_t node = (tid * 131 + q * 17) % num_nodes();
        nodes.push_back(node);
        rows.push_back(scheduler.SubmitLogitsRow(node));
        classes.push_back(scheduler.SubmitPredict(node));
      }
      for (size_t i = 0; i < nodes.size(); ++i) {
        const std::vector<float> row = rows[i].Get();
        const float* want = direct.RowPtr(nodes[i]);
        bool ok = static_cast<int64_t>(row.size()) == direct.cols();
        for (int64_t col = 0; ok && col < direct.cols(); ++col)
          ok = row[static_cast<size_t>(col)] == want[col];  // bitwise
        if (!ok) mismatches.fetch_add(1);
        if (classes[i].Get() != session.PredictNode(nodes[i]))
          mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(scheduler.stats().requests, kThreads * kPerThread * 2);
}

TEST_F(ServeTest, ScheduledExplainMatchesDirectExplain) {
  c::InferenceSession session(model_, ds_);
  serve::SchedulerOptions opt;
  opt.flush_deadline_us = 100;
  serve::BatchScheduler scheduler(&session, opt);

  for (int64_t node = 0; node < 8; ++node) {
    serve::ExplainFuture fut = scheduler.SubmitExplain(node, /*top_k=*/5);
    const auto direct = session.ExplainNode(node, /*top_k=*/5);
    const auto scheduled = fut.Get();
    EXPECT_EQ(scheduled.neighbors, direct.neighbors);
    EXPECT_EQ(scheduled.scores, direct.scores);
  }
}

TEST_F(ServeTest, QueueWaitAndBatchSizeHistogramsPopulate) {
  auto& registry = obs::MetricsRegistry::Get();
  obs::Histogram& wait_hist = registry.GetHistogram(
      "ses.sched.queue_wait_us", obs::Histogram::DefaultLatencyEdgesUs());
  obs::Histogram& size_hist = registry.GetHistogram(
      "ses.sched.batch_size", obs::Histogram::ExponentialEdges(1.0, 2.0, 12));
  const int64_t wait_before = wait_hist.Count();
  const int64_t size_before = size_hist.Count();

  c::InferenceSession session(model_, ds_);
  serve::SchedulerOptions opt;
  opt.max_batch_size = 8;
  // Only the full flush may seal: under sanitizers the 8 submits can take
  // longer than the default deadline, which would split the batch in two.
  opt.flush_deadline_us = 60'000'000;
  serve::BatchScheduler scheduler(&session, opt);
  std::vector<serve::PredictFuture> futs;
  for (int64_t n = 0; n < 8; ++n) futs.push_back(scheduler.SubmitPredict(n));
  for (auto& fut : futs) fut.Get();

  EXPECT_EQ(wait_hist.Count() - wait_before, 8);   // one wait per request
  EXPECT_EQ(size_hist.Count() - size_before, 1);   // one size per batch
}

TEST_F(ServeTest, TraceIdPropagatesFromEnqueueToWorkerSpan) {
  obs::EnableTracing(true);
  obs::ResetTracing();
  c::InferenceSession session(model_, ds_);
  serve::SchedulerOptions opt;
  opt.flush_deadline_us = 100;
  serve::BatchScheduler scheduler(&session, opt);

  uint64_t client_id = 0;
  {
    obs::RequestScope rs("client.predict");
    client_id = rs.trace_id();
    serve::PredictFuture fut = scheduler.SubmitPredict(1);
    EXPECT_EQ(fut.trace_id(), client_id);  // enqueue captured the caller's id
    fut.Get();
  }
  scheduler.Stop();
  obs::EnableTracing(false);

  bool worker_span_joined = false;
  for (const auto& ev : obs::SnapshotEvents())
    if (std::string(ev.label) == "sched/complete" && ev.trace_id == client_id)
      worker_span_joined = true;
  EXPECT_TRUE(worker_span_joined);
  obs::ResetTracing();
}

TEST_F(ServeTest, SubmitWithoutRequestScopeAllocatesFreshTraceIds) {
  c::InferenceSession session(model_, ds_);
  serve::BatchScheduler scheduler(&session);
  serve::PredictFuture a = scheduler.SubmitPredict(0);
  serve::PredictFuture b = scheduler.SubmitPredict(1);
  EXPECT_NE(a.trace_id(), 0u);
  EXPECT_NE(b.trace_id(), 0u);
  EXPECT_NE(a.trace_id(), b.trace_id());
  a.Get();
  b.Get();
}

// --- batched session APIs the scheduler dispatches to -----------------------

TEST_F(ServeTest, PredictManyMatchesPredictNode) {
  c::InferenceSession session(model_, ds_);
  std::vector<int64_t> nodes = {0, 5, 3, 5, 1};  // duplicates allowed
  const std::vector<int64_t> batched = session.PredictMany(nodes);
  ASSERT_EQ(batched.size(), nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i)
    EXPECT_EQ(batched[i], session.PredictNode(nodes[i]));
}

TEST_F(ServeTest, GatherLogitsSlicesMemoizedLogitsBitwise) {
  c::InferenceSession session(model_, ds_);
  const t::Tensor all = session.Logits();
  std::vector<int64_t> nodes = {2, 0, num_nodes() - 1};
  const t::Tensor rows = session.GatherLogits(nodes);
  ASSERT_EQ(rows.rows(), static_cast<int64_t>(nodes.size()));
  ASSERT_EQ(rows.cols(), all.cols());
  for (size_t i = 0; i < nodes.size(); ++i)
    for (int64_t col = 0; col < all.cols(); ++col)
      EXPECT_EQ(rows.At(static_cast<int64_t>(i), col), all.At(nodes[i], col));
}

TEST_F(ServeTest, ExplainManyMatchesExplainNode) {
  c::InferenceSession session(model_, ds_);
  std::vector<int64_t> nodes = {0, 7, 4};
  const auto batched = session.ExplainMany(nodes, /*top_k=*/3);
  ASSERT_EQ(batched.size(), nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    const auto direct = session.ExplainNode(nodes[i], /*top_k=*/3);
    EXPECT_EQ(batched[i].neighbors, direct.neighbors);
    EXPECT_EQ(batched[i].scores, direct.scores);
  }
}

// --- kernel-level helpers ----------------------------------------------------

TEST(ArgmaxGatherRowsTest, MatchesPerRowArgmaxWithFirstMaxWinning) {
  t::Tensor a = {{1.0f, 3.0f, 3.0f}, {5.0f, 2.0f, 0.0f}, {0.0f, 0.0f, 7.0f}};
  const int64_t idx[4] = {2, 0, 1, 0};
  const std::vector<int64_t> out = t::ArgmaxGatherRows(a, idx, 4);
  EXPECT_EQ(out, (std::vector<int64_t>{2, 1, 0, 1}));  // ties: first max wins
}

TEST(GatherRowsSpanTest, MatchesVectorOverload) {
  t::Tensor a = {{1.0f, 2.0f}, {3.0f, 4.0f}, {5.0f, 6.0f}};
  const std::vector<int64_t> idx = {2, 2, 0};
  const t::Tensor from_vec = t::GatherRows(a, idx);
  const t::Tensor from_span =
      t::GatherRows(a, idx.data(), static_cast<int64_t>(idx.size()));
  EXPECT_EQ(from_vec.MaxAbsDiff(from_span), 0.0f);
  EXPECT_EQ(from_span.At(0, 0), 5.0f);
  EXPECT_EQ(from_span.At(2, 1), 2.0f);
}

TEST(TopKByScoreTest, SelectsDescendingAndReusesScratch) {
  const float scores[] = {0.1f, 0.9f, 0.5f, 0.7f};
  std::vector<int64_t> scratch, out;
  EXPECT_EQ(ses::graph::TopKByScore(scores, 0, 4, 2, &scratch, &out), 2);
  EXPECT_EQ(out, (std::vector<int64_t>{1, 3}));
  // Same scratch, shorter range with an offset, k larger than n.
  EXPECT_EQ(ses::graph::TopKByScore(scores, 2, 2, 5, &scratch, &out), 2);
  EXPECT_EQ(out, (std::vector<int64_t>{1, 0}));  // 0.7 at local 1, 0.5 at 0
  EXPECT_EQ(ses::graph::TopKByScore(scores, 0, 0, 3, &scratch, &out), 0);
  EXPECT_TRUE(out.empty());
}

}  // namespace
