// Tests for the kernel observatory: KernelScope work accounting (exact
// declared FLOP counts for the annotated tensor kernels), inclusive /
// exclusive attribution across nested and cross-thread scopes, the
// clock-only perf fallback (SES_PERF_DISABLE), roofline placement math, and
// the folded-stack flamegraph export.
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/dispatch.h"
#include "kernels/spmm.h"
#include "obs/obs.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"

namespace {

using namespace ses;
namespace t = ses::tensor;

/// Variant labels now carry the dispatched tier suffix ("dense_avx2", ...);
/// derive the expected names from the active dispatch table so the tests
/// pass whatever tier the host CPU selects.
std::string MatMulVariant() {
  return kernels::GetDispatch().matmul_variant;
}
std::string CsrSpmmVariant() {
  return kernels::SpmmVariantName(
      {kernels::SpmmAlgo::kCsr, kernels::GetDispatch().tier});
}

/// Finds one (kernel, variant) aggregate; calls==0 stats count as absent.
const obs::KernelStats* Find(const std::vector<obs::KernelStats>& stats,
                             const std::string& kernel,
                             const std::string& variant) {
  for (const obs::KernelStats& s : stats)
    if (s.kernel == kernel && s.variant == variant && s.calls > 0) return &s;
  return nullptr;
}

class KernelScopeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::ResetKernelStats();
    obs::EnableKernelProfiling(true);
  }
  void TearDown() override {
    obs::EnableKernelProfiling(false);
    obs::ResetKernelStats();
    obs::ResetTracing();
    obs::EnableTracing(false);
  }
};

TEST_F(KernelScopeTest, DisabledScopeRecordsNothing) {
  obs::EnableKernelProfiling(false);
  obs::ResetKernelStats();
  { obs::KernelScope scope("test_kernel", "off", 100.0, 200.0); }
  EXPECT_EQ(Find(obs::SnapshotKernelStats(), "test_kernel", "off"), nullptr);
}

TEST_F(KernelScopeTest, MatMulDeclaresExactFlops) {
  // 2x3 * 3x4: 2*m*k*n = 48 FLOPs, bytes = 4*(6 + 12 + 8) = 104.
  t::Tensor a(2, 3), b(3, 4);
  for (int64_t i = 0; i < a.size(); ++i) a[i] = 1.0f;
  for (int64_t i = 0; i < b.size(); ++i) b[i] = 1.0f;
  (void)t::MatMul(a, b);
  const auto stats = obs::SnapshotKernelStats();
  const obs::KernelStats* s = Find(stats, "matmul", MatMulVariant());
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->calls, 1u);
  EXPECT_DOUBLE_EQ(s->flops, 48.0);
  EXPECT_DOUBLE_EQ(s->bytes, 104.0);
  EXPECT_GT(s->inclusive_ns, 0.0);
  EXPECT_DOUBLE_EQ(s->Intensity(), 48.0 / 104.0);
}

TEST_F(KernelScopeTest, SpmmDeclaresTwoFlopsPerNnzPerFeature) {
  // Dense 3x3 with 4 nonzeros, features = 5: flops = 2 * 4 * 5 = 40.
  t::Tensor dense_src(3, 3);
  dense_src.At(0, 1) = 1.0f;
  dense_src.At(1, 0) = 2.0f;
  dense_src.At(1, 2) = 3.0f;
  dense_src.At(2, 2) = 4.0f;
  const t::SparseMatrix sm = t::SparseMatrix::FromDense(dense_src);
  ASSERT_EQ(sm.nnz(), 4);
  t::Tensor x(3, 5);
  for (int64_t i = 0; i < x.size(); ++i) x[i] = 1.0f;
  (void)sm.MatMul(x);
  const auto stats = obs::SnapshotKernelStats();
  const obs::KernelStats* s = Find(stats, "spmm", CsrSpmmVariant());
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->flops, 40.0);
}

TEST_F(KernelScopeTest, AggregatesAccumulateAcrossCalls) {
  t::Tensor a(2, 2), b(2, 2);
  for (int i = 0; i < 3; ++i) (void)t::MatMul(a, b);
  const auto stats = obs::SnapshotKernelStats();
  const obs::KernelStats* s = Find(stats, "matmul", MatMulVariant());
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->calls, 3u);
  EXPECT_DOUBLE_EQ(s->flops, 3 * 2.0 * 2 * 2 * 2);
}

TEST_F(KernelScopeTest, NestedScopesSplitInclusiveAndExclusiveTime) {
  {
    obs::KernelScope outer("nest_outer", "v", 1000.0, 0.0);
    {
      obs::KernelScope inner("nest_inner", "v", 100.0, 0.0);
      // Some measurable work so the inner span has nonzero width.
      volatile double sink = 0;
      for (int i = 0; i < 50000; ++i) sink += i;
    }
  }
  const auto stats = obs::SnapshotKernelStats();
  const obs::KernelStats* outer = Find(stats, "nest_outer", "v");
  const obs::KernelStats* inner = Find(stats, "nest_inner", "v");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // Exact same-thread attribution: the parent's exclusive time is its
  // inclusive time minus the child's inclusive time — summing exclusive
  // times across scopes never double-counts the nested work.
  EXPECT_DOUBLE_EQ(outer->exclusive_ns,
                   outer->inclusive_ns - inner->inclusive_ns);
  EXPECT_DOUBLE_EQ(inner->exclusive_ns, inner->inclusive_ns);
  EXPECT_GT(inner->inclusive_ns, 0.0);
  // Declared work stays inclusive — the outer scope keeps its full estimate.
  EXPECT_DOUBLE_EQ(outer->flops, 1000.0);
}

TEST_F(KernelScopeTest, ScopeOnAnotherThreadDoesNotDebitTheParent) {
  // Counters and child attribution are per-thread: a scope opened by a
  // worker (an OpenMP team member, a serving thread) must not subtract from
  // a scope that happens to be open on this thread.
  {
    obs::KernelScope outer("xthread_outer", "v", 10.0, 0.0);
    std::thread worker([] {
      obs::KernelScope inner("xthread_inner", "v", 5.0, 0.0);
      volatile double sink = 0;
      for (int i = 0; i < 10000; ++i) sink += i;
    });
    worker.join();
  }
  const auto stats = obs::SnapshotKernelStats();
  const obs::KernelStats* outer = Find(stats, "xthread_outer", "v");
  const obs::KernelStats* inner = Find(stats, "xthread_inner", "v");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // No same-thread children: the parent's exclusive time equals its
  // inclusive time even though the worker's scope ran entirely inside it.
  EXPECT_DOUBLE_EQ(outer->exclusive_ns, outer->inclusive_ns);
  EXPECT_EQ(inner->calls, 1u);
}

TEST_F(KernelScopeTest, CounterValidityMatchesPerfAvailability) {
  t::Tensor a(4, 4), b(4, 4);
  (void)t::MatMul(a, b);
  const auto stats = obs::SnapshotKernelStats();
  const obs::KernelStats* s = Find(stats, "matmul", MatMulVariant());
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->counters.valid, obs::PerfCountersAvailable());
  if (obs::PerfCountersAvailable()) {
    EXPECT_GT(s->counters.instructions, 0u);
    EXPECT_GT(s->counters.Ipc(), 0.0);
  } else {
    // Clock-only fallback: rates report 0 instead of garbage.
    EXPECT_EQ(s->counters.Ipc(), 0.0);
    EXPECT_EQ(s->counters.LlcMissRate(), 0.0);
  }
}

TEST(PerfFallbackTest, SesPerfDisableForcesCleanFallback) {
  // The probe runs once per thread; a fresh thread re-probes after the
  // process-wide latch reset and must hit the SES_PERF_DISABLE branch.
  ::setenv("SES_PERF_DISABLE", "1", 1);
  obs::PerfResetForTest();
  bool available = true;
  bool valid = true;
  std::string reason;
  std::thread probe([&] {
    const obs::PerfCounts counts = obs::ReadPerfCounts();
    valid = counts.valid;
    available = obs::PerfCountersAvailable();
    reason = obs::PerfUnavailableReason();
  });
  probe.join();
  ::unsetenv("SES_PERF_DISABLE");
  obs::PerfResetForTest();
  EXPECT_FALSE(available);
  EXPECT_FALSE(valid);
  EXPECT_NE(reason.find("SES_PERF_DISABLE"), std::string::npos) << reason;
}

TEST(PerfCountsTest, SubtractionSaturatesInsteadOfWrapping) {
  obs::PerfCounts a, b;
  a.cycles = 10;
  a.instructions = 5;
  a.valid = true;
  b.cycles = 3;
  b.instructions = 50;  // multiplex scaling can overshoot the parent
  b.valid = true;
  a -= b;
  EXPECT_EQ(a.cycles, 7u);
  EXPECT_EQ(a.instructions, 0u) << "must saturate, not wrap to ~2^64";
  EXPECT_TRUE(a.valid);
}

// ---------------------------------------------------------------------------
// Roofline model math (calibration-free, via SetRooflineForTest).

TEST(RooflineTest, MemoryBoundPointSitsUnderTheBandwidthCeiling) {
  obs::RooflineModel model;
  model.peak_gflops = 100.0;
  model.peak_bw_gbs = 10.0;
  model.calibrated = true;
  EXPECT_DOUBLE_EQ(model.RidgeIntensity(), 10.0);
  // intensity 1 FLOP/byte -> attainable = min(100, 1 * 10) = 10 GFLOP/s.
  const obs::RooflinePoint p =
      obs::PlaceOnRoofline(/*flops=*/1e9, /*bytes=*/1e9, /*seconds=*/1.0,
                           model);
  EXPECT_DOUBLE_EQ(p.achieved_gflops, 1.0);
  EXPECT_DOUBLE_EQ(p.intensity, 1.0);
  EXPECT_DOUBLE_EQ(p.attainable_gflops, 10.0);
  EXPECT_DOUBLE_EQ(p.efficiency, 0.1);
  EXPECT_STREQ(p.bound, "memory");
}

TEST(RooflineTest, ComputeBoundPointSitsUnderTheFlopCeiling) {
  obs::RooflineModel model;
  model.peak_gflops = 100.0;
  model.peak_bw_gbs = 10.0;
  model.calibrated = true;
  // intensity 50 -> memory ceiling 500 > peak 100: compute bound.
  const obs::RooflinePoint p =
      obs::PlaceOnRoofline(/*flops=*/50e9, /*bytes=*/1e9, /*seconds=*/1.0,
                           model);
  EXPECT_DOUBLE_EQ(p.attainable_gflops, 100.0);
  EXPECT_DOUBLE_EQ(p.efficiency, 0.5);
  EXPECT_STREQ(p.bound, "compute");
}

TEST(RooflineTest, UncalibratedModelYieldsAchievedRateOnly) {
  const obs::RooflinePoint p =
      obs::PlaceOnRoofline(1e9, 1e9, 1.0, obs::RooflineModel{});
  EXPECT_DOUBLE_EQ(p.achieved_gflops, 1.0);
  EXPECT_DOUBLE_EQ(p.efficiency, 0.0);
  EXPECT_STREQ(p.bound, "unknown");
}

// ---------------------------------------------------------------------------
// Flamegraph export.

TEST(FlamegraphTest, NestedSpansFoldIntoStacksWithSelfTimeWeights) {
  obs::ResetTracing();
  obs::EnableTracing(true);
  obs::EnableKernelProfiling(true);
  {
    SES_TRACE_SPAN("fg_root");
    {
      obs::KernelScope inner("fg_kernel", "fast", 10.0, 0.0);
      volatile double sink = 0;
      for (int i = 0; i < 20000; ++i) sink += i;
    }
  }
  std::ostringstream out;
  obs::WriteFoldedStacks(out);
  obs::EnableKernelProfiling(false);
  obs::EnableTracing(false);
  obs::ResetTracing();

  const std::string folded = out.str();
  // Kernel spans appear as kernel:variant frames under their parent span.
  EXPECT_NE(folded.find("fg_root;fg_kernel:fast "), std::string::npos)
      << folded;
  // Every line is "stack space weight" with a positive integer weight.
  std::istringstream lines(folded);
  int checked = 0;
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("fg_", 0) != 0) continue;  // other tests' spans
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    EXPECT_GT(std::stoll(line.substr(space + 1)), 0) << line;
    ++checked;
  }
  EXPECT_GE(checked, 1);
}

TEST(FlamegraphTest, SiblingSpansShareTheParentFrame) {
  obs::ResetTracing();
  obs::EnableTracing(true);
  {
    SES_TRACE_SPAN("sib_root");
    { SES_TRACE_SPAN("sib_a"); }
    { SES_TRACE_SPAN("sib_b"); }
  }
  std::ostringstream out;
  obs::WriteFoldedStacks(out);
  obs::EnableTracing(false);
  obs::ResetTracing();
  const std::string folded = out.str();
  EXPECT_NE(folded.find("sib_root;sib_a "), std::string::npos) << folded;
  EXPECT_NE(folded.find("sib_root;sib_b "), std::string::npos) << folded;
}

}  // namespace
