// Tests for the ses_obs observability layer: span recording/aggregation,
// disabled-mode zero-cost guarantees, Chrome-trace well-formedness, metrics
// registry semantics, and telemetry serialization.
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.h"

// ---------------------------------------------------------------------------
// Global allocation counting. Replacing operator new for the whole test
// binary lets DisabledSpanAllocatesNothing assert the disabled span macro
// path never touches the heap.
static std::atomic<uint64_t> g_alloc_count{0};

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace ses;

// Minimal recursive-descent JSON syntax checker — enough to prove the trace
// and metrics exporters emit well-formed JSON without a third-party parser.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool Literal(const char* lit) {
    const size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::EnableTracing(false);
    obs::ResetTracing();
  }
  void TearDown() override {
    obs::EnableTracing(false);
    obs::ResetTracing();
    obs::Telemetry::Get().Close();
  }
};

// ------------------------------------------------------------------- spans

TEST_F(ObsTest, SpanNestingTracksDepth) {
  obs::EnableTracing(true);
  EXPECT_EQ(obs::CurrentSpanDepth(), 0);
  {
    SES_TRACE_SPAN("outer");
    EXPECT_EQ(obs::CurrentSpanDepth(), 1);
    {
      SES_TRACE_SPAN("inner");
      EXPECT_EQ(obs::CurrentSpanDepth(), 2);
    }
    EXPECT_EQ(obs::CurrentSpanDepth(), 1);
  }
  EXPECT_EQ(obs::CurrentSpanDepth(), 0);

  const auto events = obs::SnapshotEvents();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first; depth was recorded at close time.
  EXPECT_STREQ(events[0].label, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_STREQ(events[1].label, "outer");
  EXPECT_EQ(events[1].depth, 0);
  // The outer span contains the inner one in time.
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
  EXPECT_GE(events[1].start_ns + events[1].dur_ns,
            events[0].start_ns + events[0].dur_ns);
}

TEST_F(ObsTest, AggregationCountsAndTotals) {
  obs::EnableTracing(true);
  for (int i = 0; i < 3; ++i) {
    SES_TRACE_SPAN("agg_outer");
    for (int j = 0; j < 2; ++j) {
      SES_TRACE_SPAN("agg_inner");
    }
  }
  const auto stats = obs::AggregateSpanStats();
  uint64_t outer_count = 0, inner_count = 0;
  for (const auto& s : stats) {
    if (s.label == "agg_outer") {
      outer_count = s.count;
      EXPECT_GE(s.max_ns, s.min_ns);
      EXPECT_GE(s.total_ns, s.max_ns);
      EXPECT_GE(s.MeanNs(), 0.0);
    }
    if (s.label == "agg_inner") inner_count = s.count;
  }
  EXPECT_EQ(outer_count, 3u);
  EXPECT_EQ(inner_count, 6u);
}

TEST_F(ObsTest, DisabledSpanRecordsNothing) {
  ASSERT_FALSE(obs::TracingEnabled());
  {
    SES_TRACE_SPAN("invisible");
  }
  EXPECT_TRUE(obs::SnapshotEvents().empty());
}

TEST_F(ObsTest, DisabledSpanAllocatesNothing) {
  ASSERT_FALSE(obs::TracingEnabled());
  const uint64_t before = g_alloc_count.load();
  for (int i = 0; i < 1000; ++i) {
    SES_TRACE_SPAN("hot_loop");
  }
  EXPECT_EQ(g_alloc_count.load(), before)
      << "span macro allocated while tracing was disabled";
}

TEST_F(ObsTest, SpanOpenAcrossEnableIsDroppedCleanly) {
  // A span constructed while disabled stays inert even if tracing flips on
  // before its destructor runs (label_ was never set).
  obs::EnableTracing(false);
  {
    SES_TRACE_SPAN("flipped");
    obs::EnableTracing(true);
  }
  EXPECT_TRUE(obs::SnapshotEvents().empty());
}

TEST_F(ObsTest, ResetDropsEvents) {
  obs::EnableTracing(true);
  {
    SES_TRACE_SPAN("gone");
  }
  ASSERT_FALSE(obs::SnapshotEvents().empty());
  obs::ResetTracing();
  EXPECT_TRUE(obs::SnapshotEvents().empty());
}

TEST_F(ObsTest, ManySpansCrossChunkBoundaries) {
  obs::EnableTracing(true);
  constexpr int kSpans = 10000;  // > one 4096-event chunk
  for (int i = 0; i < kSpans; ++i) {
    SES_TRACE_SPAN("chunked");
  }
  EXPECT_EQ(obs::SnapshotEvents().size(), static_cast<size_t>(kSpans));
}

// ------------------------------------------------------------ chrome trace

TEST_F(ObsTest, ChromeTraceIsWellFormedJson) {
  obs::EnableTracing(true);
  {
    SES_TRACE_SPAN("trace_outer");
    SES_TRACE_SPAN("trace_inner");
  }
  obs::EnableTracing(false);

  const std::string path = TempPath("ses_obs_trace.json");
  ASSERT_TRUE(obs::WriteChromeTrace(path));
  const std::string text = ReadFile(path);
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(JsonChecker(text).Valid()) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"trace_outer\""), std::string::npos);
  EXPECT_NE(text.find("\"trace_inner\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
}

TEST_F(ObsTest, ChromeTraceEscapesLabels) {
  obs::EnableTracing(true);
  {
    SES_TRACE_SPAN("quote\"and\\slash");
  }
  obs::EnableTracing(false);
  std::ostringstream out;
  obs::WriteChromeTrace(out);
  EXPECT_TRUE(JsonChecker(out.str()).Valid()) << out.str();
}

TEST_F(ObsTest, EmptyTraceIsStillValidJson) {
  std::ostringstream out;
  obs::WriteChromeTrace(out);
  EXPECT_TRUE(JsonChecker(out.str()).Valid()) << out.str();
}

// ----------------------------------------------------------------- metrics

TEST(MetricsTest, CounterConcurrentIncrementsFromFourThreads) {
  auto& registry = obs::MetricsRegistry::Get();
  auto& counter = registry.GetCounter("test/concurrent_counter");
  counter.Reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Add();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
  // Same name resolves to the same counter.
  EXPECT_EQ(registry.GetCounter("test/concurrent_counter").Value(),
            kThreads * kPerThread);
}

TEST(MetricsTest, HistogramBucketEdgesAreInclusiveUpperBounds) {
  auto& h = obs::MetricsRegistry::Get().GetHistogram("test/hist_edges",
                                                     {1.0, 2.0, 5.0});
  h.Observe(0.5);   // bucket 0
  h.Observe(1.0);   // bucket 0 (edge is inclusive)
  h.Observe(1.5);   // bucket 1
  h.Observe(2.0);   // bucket 1
  h.Observe(4.99);  // bucket 2
  h.Observe(5.0);   // bucket 2
  h.Observe(5.01);  // overflow
  h.Observe(1e9);   // overflow
  EXPECT_EQ(h.BucketCount(0), 2);
  EXPECT_EQ(h.BucketCount(1), 2);
  EXPECT_EQ(h.BucketCount(2), 2);
  EXPECT_EQ(h.BucketCount(3), 2);
  EXPECT_EQ(h.Count(), 8);
  EXPECT_NEAR(h.Sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.99 + 5.0 + 5.01 + 1e9, 1e-6);
}

TEST(MetricsTest, GaugeLastWriteWins) {
  auto& g = obs::MetricsRegistry::Get().GetGauge("test/gauge");
  g.Set(1.5);
  g.Set(-3.25);
  EXPECT_DOUBLE_EQ(g.Value(), -3.25);
}

TEST(MetricsTest, SnapshotsAreWellFormed) {
  auto& registry = obs::MetricsRegistry::Get();
  registry.GetCounter("test/snapshot_counter").Add(7);
  registry.GetGauge("test/snapshot_gauge").Set(2.5);
  registry.GetHistogram("test/snapshot_hist", {1.0, 10.0}).Observe(3.0);

  std::ostringstream jsonl;
  registry.WriteJsonl(jsonl);
  std::istringstream lines(jsonl.str());
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(JsonChecker(line).Valid()) << line;
    ++parsed;
  }
  EXPECT_GE(parsed, 3);

  std::ostringstream csv;
  registry.WriteCsv(csv);
  EXPECT_NE(csv.str().find("counter,test/snapshot_counter,value,7"),
            std::string::npos);
  EXPECT_NE(csv.str().find("gauge,test/snapshot_gauge,value,2.5"),
            std::string::npos);
}

// --------------------------------------------------------------- telemetry

TEST(TelemetryTest, EpochRecordSerializesAsJson) {
  obs::EpochRecord record;
  record.model = "SES (GCN)";
  record.phase = "phase1";
  record.epoch = 12;
  record.loss = 0.75;
  record.grad_norm = 1.25;
  record.epoch_seconds = 0.01;
  record.val_metric = 0.8;
  const std::string json = obs::EpochRecordToJson(record);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"phase\":\"phase1\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch\":12"), std::string::npos);
  EXPECT_NE(json.find("\"nan_skips\":0"), std::string::npos);
}

TEST(TelemetryTest, NonFiniteNumbersSerializeAsNull) {
  // A poisoned step emits a NaN loss; the record must stay valid JSON (nan
  // and inf are not JSON literals).
  obs::EpochRecord record;
  record.model = "SES";
  record.phase = "phase1";
  record.loss = std::numeric_limits<double>::quiet_NaN();
  record.grad_norm = std::numeric_limits<double>::infinity();
  const std::string json = obs::EpochRecordToJson(record);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"loss\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"grad_norm\":null"), std::string::npos) << json;
  EXPECT_EQ(json.find(":nan"), std::string::npos) << json;
  EXPECT_EQ(json.find(":inf"), std::string::npos) << json;
}

TEST(TelemetryTest, JsonlSinkWritesOneLinePerRecord) {
  const std::string path = TempPath("ses_obs_telemetry.jsonl");
  ASSERT_TRUE(obs::Telemetry::Get().OpenJsonl(path));
  ASSERT_TRUE(obs::Telemetry::Get().active());
  for (int e = 0; e < 3; ++e) {
    obs::EpochRecord record;
    record.phase = "phase1";
    record.epoch = e;
    record.loss = 1.0 / (e + 1);
    obs::Telemetry::Get().Emit(record);
  }
  obs::Telemetry::Get().Close();
  EXPECT_FALSE(obs::Telemetry::Get().active());

  std::istringstream lines(ReadFile(path));
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(JsonChecker(line).Valid()) << line;
    ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST(TelemetryTest, InactiveSinkDropsRecords) {
  obs::Telemetry::Get().Close();
  obs::EpochRecord record;
  record.epoch = 1;
  obs::Telemetry::Get().Emit(record);  // must not crash or write anywhere
  EXPECT_FALSE(obs::Telemetry::Get().active());
}

}  // namespace
