#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace t = ses::tensor;

namespace {

TEST(TensorTest, ConstructionAndAccess) {
  t::Tensor a(2, 3);
  EXPECT_EQ(a.rows(), 2);
  EXPECT_EQ(a.cols(), 3);
  EXPECT_EQ(a.size(), 6);
  EXPECT_FLOAT_EQ(a.At(1, 2), 0.0f);
  a.At(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(a[5], 5.0f);
}

TEST(TensorTest, InitializerList) {
  t::Tensor a{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(a.rows(), 2);
  EXPECT_EQ(a.cols(), 3);
  EXPECT_FLOAT_EQ(a.At(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(a.At(1, 0), 4.0f);
}

TEST(TensorTest, Factories) {
  EXPECT_FLOAT_EQ(t::Tensor::Ones(3, 3).Sum(), 9.0f);
  EXPECT_FLOAT_EQ(t::Tensor::Full(2, 2, 2.5f).Mean(), 2.5f);
  t::Tensor eye = t::Tensor::Eye(4);
  EXPECT_FLOAT_EQ(eye.Sum(), 4.0f);
  EXPECT_FLOAT_EQ(eye.At(2, 2), 1.0f);
  EXPECT_FLOAT_EQ(eye.At(2, 3), 0.0f);
}

TEST(TensorTest, RandnStatistics) {
  ses::util::Rng rng(5);
  t::Tensor a = t::Tensor::Randn(200, 200, &rng);
  EXPECT_NEAR(a.Mean(), 0.0f, 0.02f);
  const float var = t::Mul(a, a).Mean() - a.Mean() * a.Mean();
  EXPECT_NEAR(var, 1.0f, 0.05f);
}

TEST(TensorTest, XavierBounds) {
  ses::util::Rng rng(6);
  t::Tensor w = t::Tensor::Xavier(64, 32, &rng);
  const float bound = std::sqrt(6.0f / (64 + 32));
  EXPECT_LE(w.Max(), bound);
  EXPECT_GE(w.Min(), -bound);
}

TEST(TensorTest, Reshape) {
  t::Tensor a = t::Tensor::Ones(2, 6);
  a.Reshape(3, 4);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 4);
  EXPECT_THROW(a.Reshape(5, 5), std::logic_error);
}

TEST(TensorTest, InPlaceOps) {
  t::Tensor a = t::Tensor::Ones(2, 2);
  t::Tensor b = t::Tensor::Full(2, 2, 3.0f);
  a.AddInPlace(b);
  EXPECT_FLOAT_EQ(a.At(0, 0), 4.0f);
  a.AddScaled(b, -1.0f);
  EXPECT_FLOAT_EQ(a.At(1, 1), 1.0f);
  a.ScaleInPlace(0.5f);
  EXPECT_FLOAT_EQ(a.At(0, 1), 0.5f);
}

TEST(TensorTest, Summaries) {
  t::Tensor a{{-1, 2}, {3, -4}};
  EXPECT_FLOAT_EQ(a.Sum(), 0.0f);
  EXPECT_FLOAT_EQ(a.Min(), -4.0f);
  EXPECT_FLOAT_EQ(a.Max(), 3.0f);
  EXPECT_FLOAT_EQ(a.Norm(), std::sqrt(30.0f));
}

// --- matmul identities, parameterized over shapes ---------------------------

class MatMulShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapeTest, TransposedVariantsAgree) {
  auto [m, k, n] = GetParam();
  ses::util::Rng rng(m * 100 + k * 10 + n);
  t::Tensor a = t::Tensor::Randn(m, k, &rng);
  t::Tensor b = t::Tensor::Randn(k, n, &rng);
  t::Tensor c = t::MatMul(a, b);
  // A^T路B via MatMulTransposedA(A stored transposed)
  t::Tensor at = t::Transpose(a);
  t::Tensor c2 = t::MatMulTransposedA(at, b);
  EXPECT_LT(c.MaxAbsDiff(c2), 1e-4f);
  t::Tensor bt = t::Transpose(b);
  t::Tensor c3 = t::MatMulTransposedB(a, bt);
  EXPECT_LT(c.MaxAbsDiff(c3), 1e-4f);
}

TEST_P(MatMulShapeTest, IdentityIsNeutral) {
  auto [m, k, n] = GetParam();
  (void)n;
  ses::util::Rng rng(7);
  t::Tensor a = t::Tensor::Randn(m, k, &rng);
  EXPECT_LT(t::MatMul(a, t::Tensor::Eye(k)).MaxAbsDiff(a), 1e-6f);
  EXPECT_LT(t::MatMul(t::Tensor::Eye(m), a).MaxAbsDiff(a), 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatMulShapeTest,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(3, 4, 5),
                                           std::make_tuple(8, 2, 8),
                                           std::make_tuple(16, 33, 7),
                                           std::make_tuple(64, 64, 64)));

TEST(TensorOpsTest, SoftmaxRowsSumToOne) {
  ses::util::Rng rng(9);
  t::Tensor a = t::Tensor::Randn(10, 7, &rng);
  t::Tensor s = t::SoftmaxRows(a);
  for (int64_t r = 0; r < s.rows(); ++r) {
    double total = 0.0;
    for (int64_t c = 0; c < s.cols(); ++c) {
      total += s.At(r, c);
      EXPECT_GE(s.At(r, c), 0.0f);
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST(TensorOpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  ses::util::Rng rng(10);
  t::Tensor a = t::Tensor::Randn(6, 5, &rng);
  t::Tensor ls = t::LogSoftmaxRows(a);
  t::Tensor ref = t::Log(t::SoftmaxRows(a));
  EXPECT_LT(ls.MaxAbsDiff(ref), 1e-5f);
}

TEST(TensorOpsTest, SoftmaxNumericallyStableAtLargeInputs) {
  t::Tensor a{{1000.0f, 1000.0f, -1000.0f}};
  t::Tensor s = t::SoftmaxRows(a);
  EXPECT_NEAR(s.At(0, 0), 0.5f, 1e-5f);
  EXPECT_NEAR(s.At(0, 2), 0.0f, 1e-6f);
  EXPECT_FALSE(std::isnan(s.Sum()));
}

TEST(TensorOpsTest, ReductionsAndArgmax) {
  t::Tensor a{{1, 5, 2}, {7, 0, 3}};
  t::Tensor rows = t::SumRows(a);
  EXPECT_FLOAT_EQ(rows[0], 8.0f);
  EXPECT_FLOAT_EQ(rows[1], 10.0f);
  t::Tensor cols = t::SumCols(a);
  EXPECT_FLOAT_EQ(cols[0], 8.0f);
  EXPECT_FLOAT_EQ(cols[1], 5.0f);
  auto arg = t::ArgmaxRows(a);
  EXPECT_EQ(arg[0], 1);
  EXPECT_EQ(arg[1], 0);
}

TEST(TensorOpsTest, GatherScatterRoundTrip) {
  ses::util::Rng rng(11);
  t::Tensor a = t::Tensor::Randn(5, 3, &rng);
  std::vector<int64_t> idx{4, 3, 2, 1, 0};
  t::Tensor g = t::GatherRows(a, idx);
  t::Tensor back(5, 3);
  t::ScatterAddRows(g, idx, &back);
  EXPECT_LT(back.MaxAbsDiff(a), 1e-6f);
}

TEST(TensorOpsTest, ConcatAndSlice) {
  t::Tensor a{{1, 2}, {3, 4}};
  t::Tensor b{{5}, {6}};
  t::Tensor cc = t::ConcatCols(a, b);
  EXPECT_EQ(cc.cols(), 3);
  EXPECT_FLOAT_EQ(cc.At(1, 2), 6.0f);
  t::Tensor cr = t::ConcatRows(a, a);
  EXPECT_EQ(cr.rows(), 4);
  t::Tensor s = t::SliceRows(cr, 1, 3);
  EXPECT_FLOAT_EQ(s.At(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(s.At(1, 1), 2.0f);
}

TEST(TensorOpsTest, PairwiseDistancesMatchBruteForce) {
  ses::util::Rng rng(12);
  t::Tensor a = t::Tensor::Randn(8, 4, &rng);
  t::Tensor d2 = t::PairwiseSquaredDistances(a);
  for (int64_t i = 0; i < 8; ++i) {
    for (int64_t j = 0; j < 8; ++j) {
      double ref = 0.0;
      for (int64_t c = 0; c < 4; ++c) {
        const double d = a.At(i, c) - a.At(j, c);
        ref += d * d;
      }
      EXPECT_NEAR(d2.At(i, j), ref, 1e-3);
    }
  }
}

TEST(TensorOpsTest, NormalizeRowsUnitNorm) {
  ses::util::Rng rng(13);
  t::Tensor a = t::Tensor::Randn(6, 5, &rng);
  t::Tensor n = t::NormalizeRows(a);
  for (int64_t r = 0; r < n.rows(); ++r) {
    double norm = 0.0;
    for (int64_t c = 0; c < n.cols(); ++c) norm += n.At(r, c) * n.At(r, c);
    EXPECT_NEAR(norm, 1.0, 1e-4);
  }
}

TEST(TensorOpsTest, ActivationRanges) {
  ses::util::Rng rng(14);
  t::Tensor a = t::Tensor::Randn(10, 10, &rng);
  t::Tensor s = t::Sigmoid(a);
  EXPECT_GT(s.Min(), 0.0f);
  EXPECT_LT(s.Max(), 1.0f);
  EXPECT_GE(t::Relu(a).Min(), 0.0f);
  t::Tensor th = t::Tanh(a);
  EXPECT_GE(th.Min(), -1.0f);
  EXPECT_LE(th.Max(), 1.0f);
  EXPECT_GT(t::Elu(a).Min(), -1.0f);
}

// --- sparse -----------------------------------------------------------------

TEST(SparseTest, DenseRoundTrip) {
  ses::util::Rng rng(15);
  t::Tensor dense = t::Tensor::Randn(7, 9, &rng);
  for (int64_t i = 0; i < dense.size(); i += 3) dense[i] = 0.0f;
  t::SparseMatrix sm = t::SparseMatrix::FromDense(dense);
  EXPECT_LT(sm.ToDense().MaxAbsDiff(dense), 1e-7f);
}

TEST(SparseTest, MatMulMatchesDense) {
  ses::util::Rng rng(16);
  t::Tensor dense = t::Tensor::Randn(6, 8, &rng);
  for (int64_t i = 1; i < dense.size(); i += 2) dense[i] = 0.0f;
  t::SparseMatrix sm = t::SparseMatrix::FromDense(dense);
  t::Tensor b = t::Tensor::Randn(8, 4, &rng);
  EXPECT_LT(sm.MatMul(b).MaxAbsDiff(t::MatMul(dense, b)), 1e-5f);
}

TEST(SparseTest, Identity) {
  t::SparseMatrix eye = t::SparseMatrix::Identity(5);
  EXPECT_EQ(eye.nnz(), 5);
  EXPECT_LT(eye.ToDense().MaxAbsDiff(t::Tensor::Eye(5)), 1e-9f);
}

TEST(SparseTest, SliceAndGatherRows) {
  t::Tensor dense{{1, 0, 2}, {0, 3, 0}, {4, 0, 0}, {0, 0, 5}};
  t::SparseMatrix sm = t::SparseMatrix::FromDense(dense);
  t::SparseMatrix sliced = sm.SliceRows(1, 3);
  EXPECT_EQ(sliced.rows, 2);
  EXPECT_FLOAT_EQ(sliced.ToDense().At(0, 1), 3.0f);
  t::SparseMatrix gathered = sm.GatherRows({3, 0});
  EXPECT_FLOAT_EQ(gathered.ToDense().At(0, 2), 5.0f);
  EXPECT_FLOAT_EQ(gathered.ToDense().At(1, 0), 1.0f);
}

}  // namespace
