#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "core/ses_model.h"
#include "data/synthetic.h"
#include "nn/optim.h"
#include "obs/metrics.h"
#include "robust/checkpoint.h"
#include "robust/fault.h"
#include "robust/health.h"
#include "robust/serialize.h"
#include "util/crc32.h"

namespace ag = ses::autograd;
namespace r = ses::robust;
namespace t = ses::tensor;
namespace fs = std::filesystem;

namespace {

/// Fresh scratch directory under test_artifacts for one test.
std::string ScratchDir(const std::string& name) {
  const std::string dir = "test_artifacts/robust/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

int64_t CounterValue(const std::string& name) {
  return ses::obs::MetricsRegistry::Get().GetCounter(name).Value();
}

/// RAII environment-variable override for SES_FAULT_SPEC.
struct ScopedFaultSpec {
  explicit ScopedFaultSpec(const std::string& spec) {
    ::setenv("SES_FAULT_SPEC", spec.c_str(), 1);
  }
  ~ScopedFaultSpec() { ::unsetenv("SES_FAULT_SPEC"); }
};

t::Tensor MakeTensor(int64_t rows, int64_t cols, float start) {
  t::Tensor out(rows, cols);
  for (int64_t i = 0; i < out.size(); ++i)
    out[i] = start + 0.25f * static_cast<float>(i);
  return out;
}

r::TrainingCheckpoint MakeCheckpoint() {
  r::TrainingCheckpoint c;
  c.model = "SES (GCN)";
  c.phase = "phase1";
  c.next_epoch = 17;
  c.params = {MakeTensor(2, 3, 1.0f), MakeTensor(4, 1, -2.0f)};
  c.optim.step_count = 17;
  c.optim.m = {MakeTensor(2, 3, 0.1f), MakeTensor(4, 1, 0.2f)};
  c.optim.v = {MakeTensor(2, 3, 0.3f), MakeTensor(4, 1, 0.4f)};
  ses::util::Rng rng(99);
  rng.Normal();  // populate the Box-Muller cache
  c.rng = rng.State();
  c.best_val = 0.8125;
  c.lr = 0.003f;
  c.tensors["mask"] = MakeTensor(3, 2, 5.0f);
  c.tensor_lists["best"] = {MakeTensor(1, 4, 9.0f)};
  c.int_lists["pairs"] = {3, 1, 4, 1, 5};
  c.double_lists["history"] = {0.0, 1.5, -2.25};
  c.scalars["alpha"] = 0.5;
  return c;
}

void ExpectBitwiseEqual(const r::TrainingCheckpoint& a,
                        const r::TrainingCheckpoint& b) {
  EXPECT_EQ(a.model, b.model);
  EXPECT_EQ(a.phase, b.phase);
  EXPECT_EQ(a.next_epoch, b.next_epoch);
  ASSERT_EQ(a.params.size(), b.params.size());
  for (size_t i = 0; i < a.params.size(); ++i)
    EXPECT_EQ(a.params[i].MaxAbsDiff(b.params[i]), 0.0f);
  EXPECT_EQ(a.optim.step_count, b.optim.step_count);
  ASSERT_EQ(a.optim.m.size(), b.optim.m.size());
  for (size_t i = 0; i < a.optim.m.size(); ++i) {
    EXPECT_EQ(a.optim.m[i].MaxAbsDiff(b.optim.m[i]), 0.0f);
    EXPECT_EQ(a.optim.v[i].MaxAbsDiff(b.optim.v[i]), 0.0f);
  }
  EXPECT_TRUE(a.rng == b.rng);
  EXPECT_EQ(a.best_val, b.best_val);
  EXPECT_EQ(a.lr, b.lr);
  ASSERT_EQ(a.tensors.size(), b.tensors.size());
  for (const auto& [name, value] : a.tensors)
    EXPECT_EQ(value.MaxAbsDiff(b.tensors.at(name)), 0.0f);
  ASSERT_EQ(a.tensor_lists.size(), b.tensor_lists.size());
  for (const auto& [name, list] : a.tensor_lists) {
    const auto& other = b.tensor_lists.at(name);
    ASSERT_EQ(list.size(), other.size());
    for (size_t i = 0; i < list.size(); ++i)
      EXPECT_EQ(list[i].MaxAbsDiff(other[i]), 0.0f);
  }
  EXPECT_EQ(a.int_lists, b.int_lists);
  EXPECT_EQ(a.double_lists, b.double_lists);
  EXPECT_EQ(a.scalars, b.scalars);
}

// --------------------------------------------------------------------- CRC32

TEST(Crc32Test, KnownAnswer) {
  // The CRC-32/IEEE check value.
  EXPECT_EQ(ses::util::Crc32("123456789"), 0xCBF43926u);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(64, 'a');
  const uint32_t clean = ses::util::Crc32(data);
  data[20] = static_cast<char>(data[20] ^ 0x01);
  EXPECT_NE(ses::util::Crc32(data), clean);
}

// ---------------------------------------------------------------- serializer

TEST(SerializeTest, ScalarAndCompositeRoundtrip) {
  r::Serializer s;
  s.WriteU32(7);
  s.WriteI64(-123456789012345);
  s.WriteF32(1.5f);
  s.WriteF64(-2.25);
  s.WriteBool(true);
  s.WriteString("hello checkpoint");
  s.WriteTensor(MakeTensor(2, 5, 3.0f));
  s.WriteI64Vec({1, -2, 3});
  s.WriteF64Vec({0.5, -0.5});

  r::Deserializer d(s.buffer());
  EXPECT_EQ(d.ReadU32(), 7u);
  EXPECT_EQ(d.ReadI64(), -123456789012345);
  EXPECT_EQ(d.ReadF32(), 1.5f);
  EXPECT_EQ(d.ReadF64(), -2.25);
  EXPECT_TRUE(d.ReadBool());
  EXPECT_EQ(d.ReadString(), "hello checkpoint");
  EXPECT_EQ(d.ReadTensor().MaxAbsDiff(MakeTensor(2, 5, 3.0f)), 0.0f);
  EXPECT_EQ(d.ReadI64Vec(), (std::vector<int64_t>{1, -2, 3}));
  EXPECT_EQ(d.ReadF64Vec(), (std::vector<double>{0.5, -0.5}));
  EXPECT_TRUE(d.AtEnd());
}

TEST(SerializeTest, ThrowsOnTruncatedPayload) {
  r::Serializer s;
  s.WriteTensor(MakeTensor(4, 4, 0.0f));
  const std::string full = s.buffer();
  r::Deserializer d(std::string_view(full).substr(0, full.size() / 2));
  EXPECT_THROW(d.ReadTensor(), std::runtime_error);
}

TEST(SerializeTest, ContainerRoundtripAndRejection) {
  const std::string dir = ScratchDir("container");
  const std::string path = dir + "/file.ses";
  r::WriteFileAtomic(path, "some payload bytes");
  EXPECT_EQ(r::ReadValidatedFile(path), "some payload bytes");
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  // Flipping one payload byte must trip the CRC.
  r::CorruptFile(path, "flip");
  EXPECT_THROW(r::ReadValidatedFile(path), std::runtime_error);

  // Truncation must trip the size check.
  r::WriteFileAtomic(path, "some payload bytes");
  r::CorruptFile(path, "truncate");
  EXPECT_THROW(r::ReadValidatedFile(path), std::runtime_error);

  // A non-checkpoint file must be rejected on magic.
  std::ofstream(path, std::ios::binary) << "definitely not a checkpoint file";
  EXPECT_THROW(r::ReadValidatedFile(path), std::runtime_error);

  EXPECT_THROW(r::ReadValidatedFile(dir + "/missing.ses"), std::runtime_error);
}

// ---------------------------------------------------------------- checkpoint

TEST(CheckpointTest, RoundtripIsBitwise) {
  const r::TrainingCheckpoint original = MakeCheckpoint();
  const r::TrainingCheckpoint loaded =
      r::TrainingCheckpoint::Deserialize(original.Serialize());
  ExpectBitwiseEqual(original, loaded);
}

TEST(CheckpointTest, DeserializeRejectsTrailingBytes) {
  std::string payload = MakeCheckpoint().Serialize();
  payload += "extra";
  EXPECT_THROW(r::TrainingCheckpoint::Deserialize(payload),
               std::runtime_error);
}

TEST(CheckpointManagerTest, RotationKeepsNewest) {
  const std::string dir = ScratchDir("rotation");
  r::CheckpointManager mgr(dir, /*keep_last=*/3);
  r::TrainingCheckpoint c = MakeCheckpoint();
  for (int64_t e = 1; e <= 5; ++e) {
    c.next_epoch = e;
    mgr.Write(c);
  }
  int64_t files = 0;
  for ([[maybe_unused]] const auto& entry : fs::directory_iterator(dir))
    ++files;
  EXPECT_EQ(files, 3);
  auto latest = mgr.LoadLatest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->next_epoch, 5);
}

TEST(CheckpointManagerTest, SequenceSurvivesReopen) {
  const std::string dir = ScratchDir("reopen");
  r::TrainingCheckpoint c = MakeCheckpoint();
  {
    r::CheckpointManager mgr(dir, 3);
    c.next_epoch = 1;
    mgr.Write(c);
  }
  // A new manager (fresh process after a crash) must continue the sequence,
  // not overwrite the existing rotation.
  r::CheckpointManager mgr(dir, 3);
  c.next_epoch = 2;
  mgr.Write(c);
  auto latest = mgr.LoadLatest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->next_epoch, 2);
}

TEST(CheckpointManagerTest, CorruptLatestFallsBackToPreviousRotation) {
  const std::string dir = ScratchDir("fallback");
  r::CheckpointManager mgr(dir, 3);
  r::TrainingCheckpoint c = MakeCheckpoint();
  c.next_epoch = 1;
  mgr.Write(c);
  c.next_epoch = 2;
  const std::string newest = mgr.Write(c);
  EXPECT_EQ(mgr.LatestPath(), newest);

  const int64_t corrupt_before = CounterValue("ses.ckpt.resume_corrupt");
  r::CorruptFile(newest, "flip");
  auto loaded = mgr.LoadLatest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->next_epoch, 1);  // previous rotation
  EXPECT_GE(CounterValue("ses.ckpt.resume_corrupt"), corrupt_before + 1);

  // Both rotations damaged => no resume.
  for (const auto& entry : fs::directory_iterator(dir))
    r::CorruptFile(entry.path().string(), "truncate");
  EXPECT_FALSE(mgr.LoadLatest().has_value());
}

// -------------------------------------------------------------------- health

TEST(HealthMonitorTest, ClassifiesSteps) {
  r::HealthMonitor health({/*max_bad_steps=*/3, /*rollback_lr_decay=*/0.5f});
  const int64_t skips_before = CounterValue("ses.train.nan_skips");
  EXPECT_EQ(health.Observe(1.0, 2.0), r::HealthMonitor::Action::kProceed);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(health.Observe(nan, 2.0), r::HealthMonitor::Action::kSkip);
  EXPECT_EQ(health.Observe(1.0, nan), r::HealthMonitor::Action::kSkip);
  // A finite step in between resets the streak.
  EXPECT_EQ(health.Observe(1.0, 2.0), r::HealthMonitor::Action::kProceed);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(health.Observe(inf, 2.0), r::HealthMonitor::Action::kSkip);
  EXPECT_EQ(health.Observe(nan, 2.0), r::HealthMonitor::Action::kSkip);
  EXPECT_EQ(health.Observe(nan, 2.0), r::HealthMonitor::Action::kRollback);
  EXPECT_EQ(CounterValue("ses.train.nan_skips"), skips_before + 5);

  const int64_t rollbacks_before = CounterValue("ses.train.rollbacks");
  health.NoteRollback();
  EXPECT_EQ(health.consecutive_bad(), 0);
  EXPECT_EQ(CounterValue("ses.train.rollbacks"), rollbacks_before + 1);
}

// --------------------------------------------------------------- fault plans

TEST(FaultPlanTest, ParsesSpec) {
  r::FaultPlan plan = r::FaultPlan::Parse(
      "nan_grad:phase=phase1,step=7;"
      "crash:phase=phase2,epoch=2,mode=throw;"
      "corrupt_ckpt:epoch=4,mode=truncate");
  ASSERT_EQ(plan.faults().size(), 3u);
  EXPECT_EQ(plan.faults()[0].kind, "nan_grad");
  EXPECT_EQ(plan.faults()[0].step, 7);
  EXPECT_EQ(plan.faults()[1].mode, "throw");
  EXPECT_EQ(plan.faults()[2].phase, "");  // matches any phase
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_THROW(r::FaultPlan::Parse("explode:step=1"), std::runtime_error);
  EXPECT_THROW(r::FaultPlan::Parse("nan_grad:bogus=1"), std::runtime_error);
  EXPECT_THROW(r::FaultPlan::Parse("nan_grad"), std::runtime_error);
  EXPECT_THROW(r::FaultPlan::Parse("crash:epoch=x"), std::runtime_error);
  EXPECT_THROW(r::FaultPlan::Parse("crash"), std::runtime_error);
  EXPECT_THROW(r::FaultPlan::Parse("crash:epoch=1,mode=soft"),
               std::runtime_error);
  EXPECT_THROW(r::FaultPlan::Parse("corrupt_ckpt:epoch=1,mode=shred"),
               std::runtime_error);
}

TEST(FaultPlanTest, FaultsFireExactlyOnce) {
  r::FaultPlan plan = r::FaultPlan::Parse("nan_loss:phase=phase1,step=3");
  EXPECT_FALSE(plan.TakeNanLoss("phase1", 2));
  EXPECT_FALSE(plan.TakeNanLoss("phase2", 3));
  EXPECT_TRUE(plan.TakeNanLoss("phase1", 3));
  EXPECT_FALSE(plan.TakeNanLoss("phase1", 3));  // already fired
  EXPECT_FALSE(plan.TakeNanGrad("phase1", 3));  // different kind
}

TEST(FaultPlanTest, ThrowModeCrashRaisesSimulatedCrash) {
  r::FaultPlan plan =
      r::FaultPlan::Parse("crash:phase=phase1,epoch=5,mode=throw");
  plan.MaybeCrash("phase1", 4);  // no-op
  EXPECT_THROW(plan.MaybeCrash("phase1", 5), r::SimulatedCrash);
  plan.MaybeCrash("phase1", 5);  // fired, now a no-op
}

// ----------------------------------------------------------- gradient guards

TEST(OptimizerTest, GlobalNormClipping) {
  // One parameter with gradient (3, 4): norm 5. Clip at 2.5 => SGD applies
  // half the gradient.
  auto p = ag::Variable::Parameter(t::Tensor::Zeros(1, 2));
  p.mutable_grad()[0] = 3.0f;
  p.mutable_grad()[1] = 4.0f;
  ses::nn::Sgd sgd({p}, /*lr=*/1.0f);
  EXPECT_FLOAT_EQ(static_cast<float>(sgd.GradNorm()), 5.0f);
  sgd.set_max_grad_norm(2.5f);
  sgd.Step();
  EXPECT_FLOAT_EQ(p.value()[0], -1.5f);
  EXPECT_FLOAT_EQ(p.value()[1], -2.0f);
}

TEST(OptimizerTest, ClippingSkippedWhenNormNotFinite) {
  auto p = ag::Variable::Parameter(t::Tensor::Zeros(1, 2));
  p.mutable_grad()[0] = std::numeric_limits<float>::quiet_NaN();
  p.mutable_grad()[1] = 4.0f;
  ses::nn::Sgd sgd({p}, /*lr=*/1.0f);
  sgd.set_max_grad_norm(1.0f);
  EXPECT_FALSE(std::isfinite(sgd.GradNorm()));
  sgd.Step();  // must not scale by NaN: the finite lane stays a plain update
  EXPECT_FLOAT_EQ(p.value()[1], -4.0f);
}

TEST(OptimizerTest, AdamStateRoundtrip) {
  ses::util::Rng rng(5);
  auto make_params = [&]() {
    return std::vector<ag::Variable>{
        ag::Variable::Parameter(t::Tensor::Randn(2, 2, &rng))};
  };
  auto a_params = make_params();
  ses::nn::Adam a(a_params, 0.01f);
  for (int i = 0; i < 3; ++i) {
    a_params[0].mutable_grad().Fill(0.5f);
    a.Step();
  }
  // Transplant values + optimizer state into a fresh setup; the next step
  // must match bitwise.
  auto b_params = make_params();
  b_params[0].mutable_value() = a_params[0].value();
  ses::nn::Adam b(b_params, 0.01f);
  b.RestoreState(a.step_count(), a.moment1(), a.moment2());
  a_params[0].mutable_grad().Fill(0.25f);
  b_params[0].mutable_grad().Fill(0.25f);
  a.Step();
  b.Step();
  EXPECT_EQ(a_params[0].value().MaxAbsDiff(b_params[0].value()), 0.0f);
}

// ------------------------------------------------- end-to-end fault tolerance

ses::data::Dataset TinyDataset() {
  ses::data::SyntheticOptions opt;
  opt.scale = 0.35;
  return ses::data::MakeBaShapes(opt);
}

ses::models::TrainConfig TinyConfig() {
  ses::models::TrainConfig config;
  config.epochs = 8;
  config.hidden = 16;
  config.seed = 3;
  config.checkpoint_every = 3;
  return config;
}

ses::core::SesOptions TinyOptions() {
  ses::core::SesOptions options;
  options.backbone = "GCN";
  options.epl_epochs = 5;
  return options;
}

t::Tensor UninterruptedLogits(const ses::data::Dataset& ds) {
  ses::core::SesModel model(TinyOptions());
  model.Fit(ds, TinyConfig());  // no checkpoint_dir: the reference run
  return model.Logits(ds);
}

TEST(ResumeTest, KillMidPhase1ResumesBitwiseIdentically) {
  auto ds = TinyDataset();
  const t::Tensor reference = UninterruptedLogits(ds);

  ses::models::TrainConfig config = TinyConfig();
  config.checkpoint_dir = ScratchDir("resume_phase1");
  {
    ScopedFaultSpec spec("crash:phase=phase1,epoch=5,mode=throw");
    ses::core::SesModel victim(TinyOptions());
    EXPECT_THROW(victim.Fit(ds, config), r::SimulatedCrash);
  }
  const int64_t ok_before = CounterValue("ses.ckpt.resume_ok");
  ses::core::SesModel resumed(TinyOptions());
  resumed.Fit(ds, config);
  EXPECT_GE(CounterValue("ses.ckpt.resume_ok"), ok_before + 1);
  EXPECT_EQ(resumed.Logits(ds).MaxAbsDiff(reference), 0.0f);
  EXPECT_EQ(resumed.loss_history().size(), 8u);
}

TEST(ResumeTest, KillMidPhase2ResumesBitwiseIdentically) {
  auto ds = TinyDataset();
  const t::Tensor reference = UninterruptedLogits(ds);

  ses::models::TrainConfig config = TinyConfig();
  config.checkpoint_dir = ScratchDir("resume_phase2");
  {
    ScopedFaultSpec spec("crash:phase=phase2,epoch=2,mode=throw");
    ses::core::SesModel victim(TinyOptions());
    EXPECT_THROW(victim.Fit(ds, config), r::SimulatedCrash);
  }
  ses::core::SesModel resumed(TinyOptions());
  resumed.Fit(ds, config);
  EXPECT_EQ(resumed.Logits(ds).MaxAbsDiff(reference), 0.0f);
}

TEST(ResumeTest, CheckpointingItselfDoesNotPerturbTraining) {
  // A run that writes checkpoints but never crashes must also match the
  // checkpoint-free reference bitwise.
  auto ds = TinyDataset();
  const t::Tensor reference = UninterruptedLogits(ds);
  ses::models::TrainConfig config = TinyConfig();
  config.checkpoint_dir = ScratchDir("ckpt_noop");
  ses::core::SesModel model(TinyOptions());
  model.Fit(ds, config);
  EXPECT_EQ(model.Logits(ds).MaxAbsDiff(reference), 0.0f);
}

TEST(FaultToleranceTest, NanLossInjectionSkipsStepAndCompletes) {
  auto ds = TinyDataset();
  const int64_t skips_before = CounterValue("ses.train.nan_skips");
  ScopedFaultSpec spec("nan_loss:phase=phase1,step=2");
  ses::core::SesModel model(TinyOptions());
  model.Fit(ds, TinyConfig());
  EXPECT_GE(CounterValue("ses.train.nan_skips"), skips_before + 1);
  // Training survived: predictions are finite.
  const t::Tensor logits = model.Logits(ds);
  for (int64_t i = 0; i < logits.size(); ++i)
    EXPECT_TRUE(std::isfinite(logits[i])) << "logit " << i;
}

TEST(FaultToleranceTest, RepeatedNansTriggerRollback) {
  auto ds = TinyDataset();
  ses::models::TrainConfig config = TinyConfig();
  config.checkpoint_dir = ScratchDir("rollback");
  config.max_bad_steps = 3;
  const int64_t rollbacks_before = CounterValue("ses.train.rollbacks");
  ScopedFaultSpec spec(
      "nan_loss:phase=phase1,step=4;"
      "nan_loss:phase=phase1,step=5;"
      "nan_loss:phase=phase1,step=6");
  ses::core::SesModel model(TinyOptions());
  model.Fit(ds, config);
  EXPECT_GE(CounterValue("ses.train.rollbacks"), rollbacks_before + 1);
  const t::Tensor logits = model.Logits(ds);
  for (int64_t i = 0; i < logits.size(); ++i)
    EXPECT_TRUE(std::isfinite(logits[i])) << "logit " << i;
}

TEST(FaultToleranceTest, CorruptedCheckpointFallsBackOnResume) {
  auto ds = TinyDataset();
  const t::Tensor reference = UninterruptedLogits(ds);

  ses::models::TrainConfig config = TinyConfig();
  config.checkpoint_dir = ScratchDir("corrupt_resume");
  {
    // Write checkpoints after epochs 2 and 5 (next_epoch 3 and 6), corrupt
    // the newer one, then crash at epoch 7.
    ScopedFaultSpec spec(
        "corrupt_ckpt:phase=phase1,epoch=6,mode=flip;"
        "crash:phase=phase1,epoch=7,mode=throw");
    ses::core::SesModel victim(TinyOptions());
    EXPECT_THROW(victim.Fit(ds, config), r::SimulatedCrash);
  }
  // Resume must reject the damaged rotation, fall back to the older one, and
  // still reproduce the uninterrupted run bitwise.
  const int64_t corrupt_before = CounterValue("ses.ckpt.resume_corrupt");
  ses::core::SesModel resumed(TinyOptions());
  resumed.Fit(ds, config);
  EXPECT_GE(CounterValue("ses.ckpt.resume_corrupt"), corrupt_before + 1);
  EXPECT_EQ(resumed.Logits(ds).MaxAbsDiff(reference), 0.0f);
}

}  // namespace
