#include <gtest/gtest.h>
#include <cmath>

#include "data/synthetic.h"
#include "metrics/fidelity.h"
#include "metrics/metrics.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace m = ses::metrics;
namespace t = ses::tensor;

namespace {

TEST(AucTest, PerfectRanking) {
  std::vector<float> scores{0.9f, 0.8f, 0.2f, 0.1f};
  std::vector<int> labels{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(m::RocAuc(scores, labels), 1.0);
}

TEST(AucTest, InvertedRanking) {
  std::vector<float> scores{0.1f, 0.2f, 0.8f, 0.9f};
  std::vector<int> labels{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(m::RocAuc(scores, labels), 0.0);
}

TEST(AucTest, AllTiedIsChance) {
  std::vector<float> scores{0.5f, 0.5f, 0.5f, 0.5f};
  std::vector<int> labels{1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(m::RocAuc(scores, labels), 0.5);
}

TEST(AucTest, DegenerateClassesReturnChance) {
  EXPECT_DOUBLE_EQ(m::RocAuc({0.1f, 0.9f}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(m::RocAuc({0.1f, 0.9f}, {0, 0}), 0.5);
}

TEST(AucTest, HalfOverlap) {
  // pos: {0.8, 0.4}, neg: {0.6, 0.2} -> 3 of 4 pairs correctly ordered.
  std::vector<float> scores{0.8f, 0.4f, 0.6f, 0.2f};
  std::vector<int> labels{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(m::RocAuc(scores, labels), 0.75);
}

TEST(AucTest, InvariantToMonotoneTransform) {
  ses::util::Rng rng(1);
  std::vector<float> scores;
  std::vector<int> labels;
  for (int i = 0; i < 100; ++i) {
    scores.push_back(rng.Uniform(0.0f, 1.0f));
    labels.push_back(rng.Bernoulli(0.4) ? 1 : 0);
  }
  const double base = m::RocAuc(scores, labels);
  for (auto& s : scores) s = std::exp(3.0f * s) + 7.0f;
  EXPECT_NEAR(m::RocAuc(scores, labels), base, 1e-12);
}

TEST(ExplanationAucTest, OracleScoresGiveOne) {
  auto ds = ses::data::MakeBaShapes();
  std::vector<float> scores(ds.graph.edges().size(), 0.0f);
  for (size_t i = 0; i < scores.size(); ++i) {
    auto [u, v] = ds.graph.edges()[i];
    if (ds.IsMotifEdge(u, v)) scores[i] = 1.0f;
  }
  EXPECT_DOUBLE_EQ(m::ExplanationAuc(ds, scores), 1.0);
}

TEST(ExplanationAucTest, RandomScoresNearChance) {
  auto ds = ses::data::MakeBaShapes();
  ses::util::Rng rng(2);
  std::vector<float> scores(ds.graph.edges().size());
  for (auto& s : scores) s = rng.Uniform(0.0f, 1.0f);
  EXPECT_NEAR(m::ExplanationAuc(ds, scores), 0.5, 0.05);
}

TEST(SilhouetteTest, WellSeparatedClustersScoreHigh) {
  ses::util::Rng rng(3);
  t::Tensor emb(60, 2);
  std::vector<int64_t> labels(60);
  for (int64_t i = 0; i < 60; ++i) {
    const int64_t c = i % 3;
    labels[static_cast<size_t>(i)] = c;
    emb.At(i, 0) = static_cast<float>(10.0 * c + rng.Normal(0, 0.1));
    emb.At(i, 1) = static_cast<float>(rng.Normal(0, 0.1));
  }
  EXPECT_GT(m::SilhouetteScore(emb, labels), 0.9);
}

TEST(SilhouetteTest, RandomLabelsScoreNearZero) {
  ses::util::Rng rng(4);
  t::Tensor emb = t::Tensor::Randn(80, 4, &rng);
  std::vector<int64_t> labels(80);
  for (auto& l : labels) l = static_cast<int64_t>(rng.UniformInt(4));
  const double s = m::SilhouetteScore(emb, labels);
  EXPECT_GT(s, -0.2);
  EXPECT_LT(s, 0.2);
}

TEST(CalinskiHarabaszTest, SeparationIncreasesScore) {
  ses::util::Rng rng(5);
  std::vector<int64_t> labels(40);
  t::Tensor tight(40, 2), loose(40, 2);
  for (int64_t i = 0; i < 40; ++i) {
    const int64_t c = i % 2;
    labels[static_cast<size_t>(i)] = c;
    tight.At(i, 0) = static_cast<float>(20.0 * c + rng.Normal(0, 0.5));
    tight.At(i, 1) = static_cast<float>(rng.Normal(0, 0.5));
    loose.At(i, 0) = static_cast<float>(2.0 * c + rng.Normal(0, 2.0));
    loose.At(i, 1) = static_cast<float>(rng.Normal(0, 2.0));
  }
  EXPECT_GT(m::CalinskiHarabaszScore(tight, labels),
            m::CalinskiHarabaszScore(loose, labels));
}

TEST(CalinskiHarabaszTest, SingleClusterIsZero) {
  ses::util::Rng rng(6);
  t::Tensor emb = t::Tensor::Randn(10, 3, &rng);
  std::vector<int64_t> labels(10, 0);
  EXPECT_DOUBLE_EQ(m::CalinskiHarabaszScore(emb, labels), 0.0);
}

TEST(SummarizeTest, MeanAndStd) {
  auto s = m::Summarize({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.std, 2.0);
  auto single = m::Summarize({5.0});
  EXPECT_DOUBLE_EQ(single.mean, 5.0);
  EXPECT_DOUBLE_EQ(single.std, 0.0);
}

TEST(FidelityTest, MaskTopFeaturesZeroesHighestScored) {
  // 1 node, 4 features; scores rank feature order 2 > 0 > 3 > 1.
  t::Tensor dense{{1.0f, 2.0f, 3.0f, 4.0f}};
  ses::data::Dataset ds;
  ds.name = "mini";
  ds.graph = ses::graph::Graph::FromUndirectedEdges(1, {});
  ds.features = std::make_shared<t::SparseMatrix>(
      t::SparseMatrix::FromDense(dense));
  ds.labels = {0};
  ds.num_classes = 1;
  std::vector<float> scores{0.5f, 0.1f, 0.9f, 0.3f};
  auto masked = m::MaskTopFeatures(ds, scores, 2);
  t::Tensor out = masked.features->ToDense();
  EXPECT_FLOAT_EQ(out.At(0, 0), 0.0f);  // score 0.5, 2nd highest
  EXPECT_FLOAT_EQ(out.At(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(out.At(0, 2), 0.0f);  // score 0.9, highest
  EXPECT_FLOAT_EQ(out.At(0, 3), 4.0f);
  // Original untouched.
  EXPECT_FLOAT_EQ(ds.features->ToDense().At(0, 2), 3.0f);
}

TEST(FidelityTest, TopKLargerThanRowIsSafe) {
  t::Tensor dense{{1.0f, 2.0f}};
  ses::data::Dataset ds;
  ds.graph = ses::graph::Graph::FromUndirectedEdges(1, {});
  ds.features = std::make_shared<t::SparseMatrix>(
      t::SparseMatrix::FromDense(dense));
  auto masked = m::MaskTopFeatures(ds, {0.1f, 0.2f}, 10);
  EXPECT_FLOAT_EQ(masked.features->ToDense().Norm(), 0.0f);
}

}  // namespace
