#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <stdexcept>

#include "data/real_world.h"
#include "data/synthetic.h"
#include "graph/graph.h"

namespace d = ses::data;

namespace {

// --- invariants every dataset must satisfy, parameterized -------------------

d::Dataset MakeByKey(const std::string& key) {
  d::SyntheticOptions small;
  small.scale = 0.3;
  if (key == "BAShapes") return d::MakeBaShapes(small);
  if (key == "BACommunity") return d::MakeBaCommunity(small);
  if (key == "Tree-Cycle") return d::MakeTreeCycle(small);
  if (key == "Tree-Grid") return d::MakeTreeGrid(small);
  return d::MakeRealWorldByName(key, /*scale=*/0.15, /*seed=*/1);
}

class DatasetInvariantTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetInvariantTest, ShapesConsistent) {
  d::Dataset ds = MakeByKey(GetParam());
  EXPECT_GT(ds.num_nodes(), 0);
  EXPECT_EQ(static_cast<int64_t>(ds.labels.size()), ds.num_nodes());
  EXPECT_EQ(ds.features->rows, ds.num_nodes());
  EXPECT_GT(ds.num_features(), 0);
  EXPECT_GT(ds.num_classes, 1);
}

TEST_P(DatasetInvariantTest, LabelsInRange) {
  d::Dataset ds = MakeByKey(GetParam());
  std::set<int64_t> seen;
  for (int64_t l : ds.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, ds.num_classes);
    seen.insert(l);
  }
  // Every class is populated.
  EXPECT_EQ(static_cast<int64_t>(seen.size()), ds.num_classes);
}

TEST_P(DatasetInvariantTest, SplitPartitionsNodes) {
  d::Dataset ds = MakeByKey(GetParam());
  std::set<int64_t> all;
  for (int64_t v : ds.train_idx) all.insert(v);
  for (int64_t v : ds.val_idx) all.insert(v);
  for (int64_t v : ds.test_idx) all.insert(v);
  EXPECT_EQ(static_cast<int64_t>(all.size()), ds.num_nodes());
  EXPECT_EQ(ds.train_idx.size() + ds.val_idx.size() + ds.test_idx.size(),
            static_cast<size_t>(ds.num_nodes()));
  EXPECT_GT(ds.train_idx.size(), ds.test_idx.size() / 4);
}

TEST_P(DatasetInvariantTest, GraphIsSimpleAndConnectedEnough) {
  d::Dataset ds = MakeByKey(GetParam());
  // No isolated region larger than half the graph (BFS from node 0).
  std::vector<bool> seen(static_cast<size_t>(ds.num_nodes()), false);
  std::vector<int64_t> stack{0};
  seen[0] = true;
  int64_t count = 1;
  while (!stack.empty()) {
    int64_t u = stack.back();
    stack.pop_back();
    for (int64_t v : ds.graph.Neighbors(u)) {
      if (!seen[static_cast<size_t>(v)]) {
        seen[static_cast<size_t>(v)] = true;
        ++count;
        stack.push_back(v);
      }
    }
  }
  EXPECT_GT(count, ds.num_nodes() / 2);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetInvariantTest,
                         ::testing::Values("BAShapes", "BACommunity",
                                           "Tree-Cycle", "Tree-Grid", "Cora",
                                           "CiteSeer", "PolBlogs", "CS"));

// --- synthetic ground truth --------------------------------------------------

class SyntheticGtTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SyntheticGtTest, GroundTruthEdgesExistAndTouchMotifs) {
  d::SyntheticOptions opt;
  opt.scale = 0.3;
  d::Dataset ds = d::MakeSyntheticByName(GetParam(), opt);
  ASSERT_TRUE(ds.HasGroundTruthExplanations());
  for (auto [u, v] : ds.gt_motif_edges) {
    EXPECT_TRUE(ds.graph.HasEdge(u, v));
    EXPECT_TRUE(ds.in_motif[static_cast<size_t>(u)]);
    EXPECT_TRUE(ds.in_motif[static_cast<size_t>(v)]);
    EXPECT_TRUE(ds.IsMotifEdge(u, v));
    EXPECT_TRUE(ds.IsMotifEdge(v, u));
  }
}

TEST_P(SyntheticGtTest, MotifNodesHaveNonBaseLabels) {
  d::SyntheticOptions opt;
  opt.scale = 0.3;
  d::Dataset ds = d::MakeSyntheticByName(GetParam(), opt);
  for (int64_t i = 0; i < ds.num_nodes(); ++i) {
    if (GetParam() == "BACommunity") continue;  // two base labels there
    if (!ds.in_motif[static_cast<size_t>(i)])
      EXPECT_EQ(ds.labels[static_cast<size_t>(i)], 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Synthetics, SyntheticGtTest,
                         ::testing::Values("BAShapes", "BACommunity",
                                           "Tree-Cycle", "Tree-Grid"));

TEST(SyntheticTest, BaShapesStructure) {
  d::Dataset ds = d::MakeBaShapes();  // paper scale
  EXPECT_EQ(ds.num_nodes(), 300 + 80 * 5);
  EXPECT_EQ(ds.num_classes, 4);
  // 80 houses x 6 internal edges (modulo rare dedup overlaps).
  EXPECT_GE(static_cast<int64_t>(ds.gt_motif_edges.size()), 470);
  int64_t motif_nodes = 0;
  for (bool m : ds.in_motif) motif_nodes += m;
  EXPECT_EQ(motif_nodes, 400);
}

TEST(SyntheticTest, TreeCycleStructure) {
  d::Dataset ds = d::MakeTreeCycle();
  EXPECT_EQ(ds.num_nodes(), 511 + 80 * 6);
  EXPECT_EQ(ds.num_classes, 2);
}

TEST(SyntheticTest, TreeGridStructure) {
  d::Dataset ds = d::MakeTreeGrid();
  EXPECT_EQ(ds.num_nodes(), 511 + 80 * 9);
  // 3x3 grid has 12 internal edges.
  EXPECT_GE(static_cast<int64_t>(ds.gt_motif_edges.size()), 80 * 12 - 20);
}

TEST(SyntheticTest, DeterministicAcrossCalls) {
  d::Dataset a = d::MakeBaShapes();
  d::Dataset b = d::MakeBaShapes();
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.labels, b.labels);
}

TEST(SyntheticTest, SeedChangesGraph) {
  d::SyntheticOptions opt1, opt2;
  opt2.seed = 99;
  d::Dataset a = d::MakeBaShapes(opt1);
  d::Dataset b = d::MakeBaShapes(opt2);
  EXPECT_NE(a.graph.edges(), b.graph.edges());
}

TEST(SyntheticTest, BarabasiAlbertDegreeSkew) {
  ses::util::Rng rng(13);
  auto g = d::MakeBarabasiAlbert(400, 3, &rng);
  int64_t max_deg = 0;
  for (int64_t v = 0; v < g.num_nodes(); ++v)
    max_deg = std::max(max_deg, g.Degree(v));
  // Preferential attachment produces hubs far above the mean degree (~6).
  EXPECT_GT(max_deg, 20);
}

// --- real-world stand-ins -----------------------------------------------------

TEST(RealWorldTest, CoraMatchesPublishedShape) {
  d::Dataset ds = d::MakeRealWorldByName("Cora", 1.0, 0);
  EXPECT_EQ(ds.num_nodes(), 2708);
  EXPECT_EQ(ds.num_classes, 7);
  EXPECT_NEAR(static_cast<double>(ds.graph.num_edges()), 5278.0, 500.0);
}

TEST(RealWorldTest, HomophilyCalibrated) {
  d::Dataset ds = d::MakeRealWorldByName("Cora", 0.5, 0);
  int64_t same = 0;
  for (auto [u, v] : ds.graph.edges())
    same += ds.labels[static_cast<size_t>(u)] ==
            ds.labels[static_cast<size_t>(v)];
  const double homophily =
      static_cast<double>(same) / static_cast<double>(ds.graph.num_edges());
  EXPECT_GT(homophily, 0.6);  // target 0.81 minus the random ring backbone
}

TEST(RealWorldTest, PolBlogsIdentityFeatures) {
  d::Dataset ds = d::MakeRealWorldByName("PolBlogs", 0.2, 0);
  EXPECT_EQ(ds.num_features(), ds.num_nodes());
  EXPECT_EQ(ds.features->nnz(), ds.num_nodes());
  EXPECT_EQ(ds.num_classes, 2);
}

TEST(RealWorldTest, FeaturesSparseAndClassCorrelated) {
  d::Dataset ds = d::MakeRealWorldByName("CiteSeer", 0.3, 0);
  // Sparse: average nonzeros per node far below dimensionality.
  const double avg_nnz = static_cast<double>(ds.features->nnz()) /
                         static_cast<double>(ds.num_nodes());
  EXPECT_LT(avg_nnz, ds.num_features() / 5.0);
  EXPECT_GT(avg_nnz, 3.0);
}

TEST(RealWorldTest, ScaleShrinksGraph) {
  d::Dataset big = d::MakeRealWorldByName("Cora", 0.5, 0);
  d::Dataset small = d::MakeRealWorldByName("Cora", 0.25, 0);
  EXPECT_GT(big.num_nodes(), small.num_nodes());
  EXPECT_GT(big.graph.num_edges(), small.graph.num_edges());
}

TEST(RealWorldTest, SeedsProduceDifferentSplits) {
  d::Dataset a = d::MakeRealWorldByName("Cora", 0.2, 1);
  d::Dataset b = d::MakeRealWorldByName("Cora", 0.2, 2);
  EXPECT_NE(a.train_idx, b.train_idx);
}

// ------------------------------------------------------- load-time validation

TEST(ValidateDatasetTest, AcceptsEveryBuiltInLoader) {
  for (const char* key : {"BAShapes", "Tree-Cycle", "Cora"})
    EXPECT_NO_THROW(d::ValidateDataset(MakeByKey(key))) << key;
}

TEST(ValidateDatasetTest, RejectsOutOfRangeLabel) {
  d::Dataset ds = MakeByKey("BAShapes");
  ds.labels[3] = ds.num_classes;  // one past the end
  EXPECT_THROW(d::ValidateDataset(ds), std::runtime_error);
  ds.labels[3] = -1;
  EXPECT_THROW(d::ValidateDataset(ds), std::runtime_error);
}

TEST(ValidateDatasetTest, RejectsLabelCountMismatch) {
  d::Dataset ds = MakeByKey("BAShapes");
  ds.labels.pop_back();
  EXPECT_THROW(d::ValidateDataset(ds), std::runtime_error);
}

TEST(ValidateDatasetTest, RejectsNonFiniteFeature) {
  d::Dataset ds = MakeByKey("BAShapes");
  auto broken = std::make_shared<ses::tensor::SparseMatrix>(*ds.features);
  broken->values[0] = std::numeric_limits<float>::quiet_NaN();
  ds.features = broken;
  EXPECT_THROW(d::ValidateDataset(ds), std::runtime_error);
}

TEST(ValidateDatasetTest, RejectsMalformedFeatureCsr) {
  d::Dataset ds = MakeByKey("BAShapes");
  auto broken = std::make_shared<ses::tensor::SparseMatrix>(*ds.features);
  broken->col_idx[0] = broken->cols;  // column index out of range
  ds.features = broken;
  EXPECT_THROW(d::ValidateDataset(ds), std::runtime_error);
}

TEST(ValidateDatasetTest, RejectsSplitIndexOutOfRange) {
  d::Dataset ds = MakeByKey("BAShapes");
  ds.val_idx.push_back(ds.num_nodes());
  EXPECT_THROW(d::ValidateDataset(ds), std::runtime_error);
}

TEST(ValidateDatasetTest, RejectsOutOfRangeMotifEdge) {
  d::Dataset ds = MakeByKey("BAShapes");
  ds.gt_motif_edges.emplace_back(0, ds.num_nodes() + 5);
  EXPECT_THROW(d::ValidateDataset(ds), std::runtime_error);
}

TEST(ValidateDatasetTest, ErrorNamesTheDataset) {
  d::Dataset ds = MakeByKey("BAShapes");
  ds.labels[0] = -1;
  try {
    d::ValidateDataset(ds);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(ds.name), std::string::npos)
        << e.what();
  }
}

TEST(GraphValidationTest, RejectsOutOfRangeEdgeEndpoint) {
  EXPECT_THROW(
      ses::graph::Graph::FromUndirectedEdges(3, {{0, 1}, {1, 3}}),
      std::runtime_error);
  EXPECT_THROW(
      ses::graph::Graph::FromUndirectedEdges(3, {{-1, 1}}),
      std::runtime_error);
}

}  // namespace
