// Million-node data plane, small-N legs (DESIGN.md §16): bulk graph
// builders, the scale generator, the partitioner's invariants, and the
// bitwise shard-parity contract of ShardedSession / ShardRouter. The >=100k
// legs live in scale_slow_test.cc (label: slow).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/inference_session.h"
#include "core/ses_model.h"
#include "core/sharded_session.h"
#include "data/scale.h"
#include "data/synthetic.h"
#include "graph/partition.h"
#include "kernels/spmm.h"
#include "models/encoders.h"
#include "obs/metrics.h"
#include "serve/shard_router.h"
#include "util/rng.h"

namespace {

namespace c = ses::core;
namespace d = ses::data;
namespace g = ses::graph;
namespace k = ses::kernels;

d::Dataset SmallBaShapes() {
  d::SyntheticOptions opt;
  opt.scale = 0.35;
  return d::MakeBaShapes(opt);
}

d::Dataset SmallScaleGraph(int64_t nodes = 3000, uint64_t seed = 7) {
  d::ScaleGraphOptions opt;
  opt.num_nodes = nodes;
  opt.seed = seed;
  return d::MakeScaleGraph(opt);
}

/// Bitwise equality of two logits tensors (the parity contract is exact
/// equality, not a tolerance).
void ExpectBitwiseEqual(const ses::tensor::Tensor& a,
                        const ses::tensor::Tensor& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.rows() * a.cols()) *
                            sizeof(float)),
            0);
}

std::vector<int64_t> AllNodes(const d::Dataset& ds) {
  std::vector<int64_t> nodes(static_cast<size_t>(ds.num_nodes()));
  for (int64_t i = 0; i < ds.num_nodes(); ++i) nodes[static_cast<size_t>(i)] = i;
  return nodes;
}

// --- Graph builders -----------------------------------------------------------

TEST(BulkGraphBuildTest, BulkMatchesSetBasedBuilder) {
  ses::util::Rng rng(3);
  std::vector<std::pair<int64_t, int64_t>> edges;
  for (int i = 0; i < 4000; ++i) {
    const int64_t u = static_cast<int64_t>(rng.UniformInt(500));
    const int64_t v = static_cast<int64_t>(rng.UniformInt(500));
    edges.emplace_back(u, v);  // any orientation, dups and self-loops too
  }
  const g::Graph a = g::Graph::FromUndirectedEdges(500, edges);
  const g::Graph b = g::Graph::FromUndirectedEdgesBulk(500, std::move(edges));
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.edges(), b.edges());
  for (int64_t v = 0; v < 500; ++v) {
    ASSERT_EQ(a.Degree(v), b.Degree(v));
    const auto na = a.Neighbors(v);
    const auto nb = b.Neighbors(v);
    EXPECT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()));
  }
}

TEST(BulkGraphBuildTest, SortedUniqueBuilderRejectsDisorder) {
  std::vector<std::pair<int64_t, int64_t>> bad = {{1, 2}, {0, 3}};
  EXPECT_THROW(g::Graph::FromSortedUniqueEdges(4, std::move(bad)),
               std::logic_error);
}

// --- Scale generator ----------------------------------------------------------

TEST(ScaleGeneratorTest, DeterministicUnderSeed) {
  const d::Dataset a = SmallScaleGraph(2000, 11);
  const d::Dataset b = SmallScaleGraph(2000, 11);
  const d::Dataset c = SmallScaleGraph(2000, 12);
  EXPECT_EQ(d::DatasetDigest(a), d::DatasetDigest(b));
  EXPECT_NE(d::DatasetDigest(a), d::DatasetDigest(c));
}

TEST(ScaleGeneratorTest, PlantsMotifsWithGroundTruth) {
  const d::Dataset ds = SmallScaleGraph(2000);
  EXPECT_EQ(ds.num_classes, 5);
  EXPECT_TRUE(ds.HasGroundTruthExplanations());
  // Every ground-truth edge exists and connects motif nodes of motif labels.
  for (const auto& [u, v] : ds.gt_motif_edges) {
    EXPECT_TRUE(ds.graph.HasEdge(u, v));
    EXPECT_TRUE(ds.in_motif[static_cast<size_t>(u)]);
    EXPECT_TRUE(ds.in_motif[static_cast<size_t>(v)]);
    EXPECT_GT(ds.labels[static_cast<size_t>(u)], 0);
    EXPECT_GT(ds.labels[static_cast<size_t>(v)], 0);
  }
  // All five labels are populated (base + 3 house roles + cycle).
  std::set<int64_t> seen(ds.labels.begin(), ds.labels.end());
  EXPECT_EQ(seen.size(), 5u);
}

TEST(ScaleGeneratorTest, PowerLawExponentControlsSkew) {
  d::ScaleGraphOptions heavy;
  heavy.num_nodes = 5000;
  heavy.powerlaw_exponent = 2.2;
  heavy.seed = 5;
  d::ScaleGraphOptions light = heavy;
  light.powerlaw_exponent = 3.5;
  const d::Dataset a = d::MakeScaleGraph(heavy);
  const d::Dataset b = d::MakeScaleGraph(light);
  auto max_degree = [](const d::Dataset& ds) {
    int64_t m = 0;
    for (int64_t v = 0; v < ds.num_nodes(); ++v)
      m = std::max(m, ds.graph.Degree(v));
    return m;
  };
  // A heavier tail means bigger hubs; both far exceed the mean degree.
  EXPECT_GT(max_degree(a), max_degree(b));
  EXPECT_GT(max_degree(b),
            4 * (2 * a.graph.num_edges() / a.num_nodes()));
}

// --- Partitioner --------------------------------------------------------------

void CheckPartitionInvariants(const d::Dataset& ds, int64_t num_shards) {
  g::PartitionOptions opt;
  opt.num_shards = num_shards;
  const g::Partition part = g::Partitioner(opt).Run(ds.graph);
  ASSERT_EQ(part.num_shards(), num_shards);

  // Every node owned exactly once, and shard_of agrees with the owned lists.
  std::vector<int64_t> owner_count(static_cast<size_t>(ds.num_nodes()), 0);
  for (int64_t s = 0; s < num_shards; ++s)
    for (const int64_t v : part.shards[static_cast<size_t>(s)].owned) {
      ++owner_count[static_cast<size_t>(v)];
      EXPECT_EQ(part.shard_of[static_cast<size_t>(v)], s);
    }
  for (const int64_t c : owner_count) EXPECT_EQ(c, 1);

  // Every edge assigned to exactly one shard (owner of the min endpoint).
  int64_t owned_edges = 0;
  for (const auto& shard : part.shards) owned_edges += shard.num_owned_edges;
  EXPECT_EQ(owned_edges, ds.graph.num_edges());
  EXPECT_GE(part.edge_cut_fraction(), 0.0);
  EXPECT_LE(part.edge_cut_fraction(), 1.0);
  // The capacity bound is integral: ceil(slack * n / shards) owned nodes max
  // (the fractional slack itself can be overshot by rounding on small n).
  const auto capacity = static_cast<int64_t>(
      std::ceil(part.options.balance_slack *
                static_cast<double>(ds.num_nodes()) /
                static_cast<double>(num_shards)));
  for (const auto& shard : part.shards)
    EXPECT_LE(static_cast<int64_t>(shard.owned.size()), capacity);
  EXPECT_GE(part.balance(), 1.0);

  for (const auto& shard : part.shards) {
    // Node lists sorted, unique, and consistent.
    EXPECT_TRUE(std::is_sorted(shard.nodes.begin(), shard.nodes.end()));
    EXPECT_TRUE(std::is_sorted(shard.halo.begin(), shard.halo.end()));
    EXPECT_EQ(shard.nodes.size(), shard.owned.size() + shard.halo.size());

    // Ghost table closed under halo_hops: BFS in the FULL graph from the
    // owned set never leaves the shard's replicated node set.
    std::set<int64_t> members(shard.nodes.begin(), shard.nodes.end());
    std::set<int64_t> visited(shard.owned.begin(), shard.owned.end());
    std::vector<int64_t> frontier = shard.owned;
    for (int64_t hop = 0; hop < part.options.halo_hops; ++hop) {
      std::vector<int64_t> next;
      for (const int64_t v : frontier)
        for (const int64_t u : ds.graph.Neighbors(v))
          if (visited.insert(u).second) next.push_back(u);
      frontier = std::move(next);
    }
    for (const int64_t v : visited) EXPECT_TRUE(members.count(v));

    // The local graph is the induced subgraph: every local edge exists
    // globally, and owned nodes keep their exact global degree.
    for (const auto& [lu, lv] : shard.graph.edges())
      EXPECT_TRUE(ds.graph.HasEdge(shard.nodes[static_cast<size_t>(lu)],
                                   shard.nodes[static_cast<size_t>(lv)]));
    for (const int64_t v : shard.owned)
      EXPECT_EQ(shard.graph.Degree(shard.LocalOf(v)), ds.graph.Degree(v));
  }
}

TEST(PartitionerTest, InvariantsOnBaShapes) {
  CheckPartitionInvariants(SmallBaShapes(), 4);
}

TEST(PartitionerTest, InvariantsOnScaleGraph) {
  CheckPartitionInvariants(SmallScaleGraph(), 6);
}

TEST(PartitionerTest, ExportsQualityMetrics) {
  const d::Dataset ds = SmallScaleGraph(2000);
  g::PartitionOptions opt;
  opt.num_shards = 5;
  g::Partitioner(opt).Run(ds.graph);
  auto& reg = ses::obs::MetricsRegistry::Get();
  EXPECT_EQ(reg.GetGauge("ses.partition.shards").Value(), 5.0);
  const double cut = reg.GetGauge("ses.partition.edge_cut_fraction").Value();
  EXPECT_GE(cut, 0.0);
  EXPECT_LE(cut, 1.0);
  EXPECT_GE(reg.GetGauge("ses.partition.balance").Value(), 1.0);
  EXPECT_GT(reg.GetGauge("ses.partition.max_shard_nodes").Value(), 0.0);
}

// --- SpMM plan pinning --------------------------------------------------------

TEST(SpmmPlanPinTest, PinnedStatsDriveTheChoice) {
  const d::Dataset ds = SmallBaShapes();
  const auto edges = ds.graph.DirectedEdges(/*add_self_loops=*/true);
  // Stats of a hub-heavy million-row graph: the heuristic must flip to the
  // blocked variant, whatever this small graph's own stats would pick.
  k::GraphStats big;
  big.nodes = 1 << 20;
  big.nnz = big.nodes * 16;
  big.max_degree = 100000;
  big.avg_degree = 16.0;
  big.density = 16.0 / static_cast<double>(big.nodes);
  big.degree_cv = 5.0;
  const auto plan = edges->plan();
  plan->PinChoiceStats(big);
  const k::SpmmChoice got = plan->Choose(64, nullptr, nullptr);
  const k::SpmmChoice want = k::HeuristicSpmmChoice(big, 64, got.tier);
  EXPECT_EQ(static_cast<int>(got.algo), static_cast<int>(want.algo));
  EXPECT_EQ(static_cast<int>(want.algo),
            static_cast<int>(k::SpmmAlgo::kCsrBlocked));
}

TEST(ShardedSessionTest, WholeGraphStatsMatchComputed) {
  for (const d::Dataset& ds : {SmallBaShapes(), SmallScaleGraph(1500)}) {
    const auto edges = ds.graph.DirectedEdges(/*add_self_loops=*/true);
    const k::GraphStats direct = k::ComputeGraphStats(
        edges->dst.data(), edges->size(), edges->num_nodes);
    const k::GraphStats derived = c::WholeGraphSpmmStats(ds.graph);
    EXPECT_EQ(direct.nodes, derived.nodes);
    EXPECT_EQ(direct.nnz, derived.nnz);
    EXPECT_EQ(direct.max_degree, derived.max_degree);
    EXPECT_EQ(direct.avg_degree, derived.avg_degree);
    EXPECT_EQ(direct.density, derived.density);
    EXPECT_EQ(direct.degree_cv, derived.degree_cv);  // bitwise, not approx
  }
}

// --- Bitwise shard parity -----------------------------------------------------

void CheckEncoderParity(const d::Dataset& ds, const std::string& backbone,
                        int64_t num_shards) {
  ses::util::Rng rng(17);
  auto encoder = ses::models::MakeEncoder(backbone, ds.num_features(), 16,
                                          ds.num_classes, &rng);
  c::InferenceSession single(encoder.get(), &ds);
  c::ShardedSessionOptions opt;
  opt.partition.num_shards = num_shards;
  c::ShardedSession sharded(encoder.get(), &ds, opt);

  const std::vector<int64_t> nodes = AllNodes(ds);
  ExpectBitwiseEqual(single.GatherLogits(nodes), sharded.GatherLogits(nodes));
  EXPECT_EQ(single.PredictMany(nodes), sharded.PredictMany(nodes));
  // Every shard replays the whole-graph autotune decision (pinned stats).
  for (int64_t s = 0; s < sharded.num_shards(); ++s)
    EXPECT_EQ(sharded.shard_session(s)->spmm_variant(),
              single.spmm_variant());
}

TEST(ShardedSessionTest, BitwiseParityOnBaShapesGcn) {
  CheckEncoderParity(SmallBaShapes(), "GCN", 4);
}

TEST(ShardedSessionTest, BitwiseParityOnScaleGraphAllBackbones) {
  const d::Dataset ds = SmallScaleGraph();
  for (const std::string backbone : {"GCN", "GAT", "GIN", "SAGE"})
    CheckEncoderParity(ds, backbone, 4);
}

TEST(ShardedSessionTest, HaloExchangeTracksFeatureUpdates) {
  const d::Dataset base = SmallScaleGraph(1500);
  d::Dataset ds = base;
  ses::util::Rng rng(5);
  auto encoder = ses::models::MakeEncoder("GCN", ds.num_features(), 16,
                                          ds.num_classes, &rng);
  c::InferenceSession single(encoder.get(), &ds);
  c::ShardedSessionOptions opt;
  opt.partition.num_shards = 3;
  c::ShardedSession sharded(encoder.get(), &ds, opt);
  const std::vector<int64_t> nodes = AllNodes(ds);
  ExpectBitwiseEqual(single.GatherLogits(nodes), sharded.GatherLogits(nodes));
  EXPECT_EQ(sharded.stats().exchanges, 1);
  EXPECT_GT(sharded.stats().halo_rows, 0);

  // Mutate the global features; a fresh halo exchange must propagate the new
  // rows into every shard and parity must hold again.
  auto scaled = std::make_shared<ses::tensor::SparseMatrix>(*ds.features);
  for (float& v : scaled->values) v *= 2.0f;
  ds.features = std::move(scaled);
  single.InvalidateGraph();
  sharded.InvalidateGraph();
  ExpectBitwiseEqual(single.GatherLogits(nodes), sharded.GatherLogits(nodes));
  EXPECT_EQ(sharded.stats().exchanges, 2);
}

TEST(ShardedSessionTest, SesModelParityIncludingExplanations) {
  d::Dataset ds = SmallBaShapes();
  c::SesOptions opt;
  opt.backbone = "GCN";
  c::SesModel model(opt);
  ses::models::TrainConfig cfg;
  cfg.epochs = 25;
  cfg.hidden = 16;
  cfg.dropout = 0.2f;
  cfg.seed = 1;
  model.Fit(ds, cfg);

  c::InferenceSession single(&model, &ds);
  c::ShardedSessionOptions sopt;
  sopt.partition.num_shards = 4;
  c::ShardedSession sharded(&model, &ds, sopt);

  const std::vector<int64_t> nodes = AllNodes(ds);
  ExpectBitwiseEqual(single.GatherLogits(nodes), sharded.GatherLogits(nodes));
  for (const int64_t node : {0L, 7L, ds.num_nodes() - 1}) {
    const auto a = single.ExplainNode(node, 6);
    const auto b = sharded.ExplainNode(node, 6);
    EXPECT_EQ(a.neighbors, b.neighbors);
    EXPECT_EQ(a.scores, b.scores);
  }
}

// --- ShardRouter --------------------------------------------------------------

TEST(ShardRouterTest, RoutedPredictionsMatchDirectCalls) {
  const d::Dataset ds = SmallScaleGraph(2000);
  ses::util::Rng rng(23);
  auto encoder = ses::models::MakeEncoder("GCN", ds.num_features(), 16,
                                          ds.num_classes, &rng);
  c::ShardedSessionOptions opt;
  opt.partition.num_shards = 4;
  c::ShardedSession sharded(encoder.get(), &ds, opt);
  ses::serve::ShardRouter router(&sharded);
  ASSERT_EQ(router.num_shards(), 4);

  std::vector<int64_t> nodes;
  for (int i = 0; i < 96; ++i)
    nodes.push_back(static_cast<int64_t>(rng.UniformInt(
        static_cast<uint64_t>(ds.num_nodes()))));

  std::vector<ses::serve::PredictFuture> futures;
  futures.reserve(nodes.size());
  for (const int64_t n : nodes) futures.push_back(router.SubmitPredict(n));
  for (size_t i = 0; i < nodes.size(); ++i)
    EXPECT_EQ(futures[i].Get(), sharded.PredictNode(nodes[i]));

  std::vector<ses::serve::PredictFuture> stream(nodes.size());
  EXPECT_EQ(router.SubmitPredictStream(nodes.data(),
                                       static_cast<int64_t>(nodes.size()),
                                       stream.data()),
            static_cast<int64_t>(nodes.size()));
  for (size_t i = 0; i < nodes.size(); ++i)
    EXPECT_EQ(stream[i].Get(), sharded.PredictNode(nodes[i]));

  const auto row = router.SubmitLogitsRow(nodes[0]).Get();
  const auto direct = sharded.GatherLogits({nodes[0]});
  ASSERT_EQ(static_cast<int64_t>(row.size()), direct.cols());
  EXPECT_EQ(std::memcmp(row.data(), direct.data(),
                        row.size() * sizeof(float)),
            0);

  const auto stats = router.stats();
  EXPECT_GE(stats.requests, static_cast<int64_t>(2 * nodes.size()));
  router.Stop();
  router.Stop();  // idempotent
}

}  // namespace
