#include <gtest/gtest.h>
#include <cmath>

#include "core/ses_model.h"
#include "data/synthetic.h"
#include "explain/gnn_explainer.h"
#include "explain/grad_att.h"
#include "explain/graphlime.h"
#include "explain/pg_explainer.h"
#include "explain/pgm_explainer.h"
#include "metrics/metrics.h"
#include "models/backbone_models.h"

namespace ex = ses::explain;
namespace md = ses::models;

namespace {

struct Fixture {
  ses::data::Dataset ds;
  md::BackboneModel gcn{"GCN"};
  md::BackboneModel gat{"GAT"};
  std::vector<int64_t> nodes;

  Fixture() {
    ses::data::SyntheticOptions opt;
    opt.scale = 0.35;
    ds = ses::data::MakeBaShapes(opt);
    md::TrainConfig cfg;
    cfg.epochs = 100;
    cfg.hidden = 32;
    cfg.dropout = 0.2f;
    cfg.seed = 1;
    gcn.Fit(ds, cfg);
    gat.Fit(ds, cfg);
    nodes = ex::NodesToExplain(ds, 30);
  }
};

Fixture& Shared() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

TEST(NodesToExplainTest, MotifNodesFirstAndCapped) {
  auto& f = Shared();
  auto nodes = ex::NodesToExplain(f.ds, 10);
  EXPECT_EQ(nodes.size(), 10u);
  for (int64_t v : nodes)
    EXPECT_TRUE(f.ds.in_motif[static_cast<size_t>(v)]);
  auto all = ex::NodesToExplain(f.ds, 0);
  EXPECT_EQ(all.size(), static_cast<size_t>(f.ds.num_nodes()));
}

TEST(GradExplainerTest, ProducesFiniteNonTrivialScores) {
  auto& f = Shared();
  ex::GradExplainer grad(f.gcn.encoder());
  auto edges = grad.ExplainEdges(f.ds);
  ASSERT_EQ(edges.size(), f.ds.graph.edges().size());
  float mx = 0.0f;
  for (float s : edges) {
    ASSERT_TRUE(std::isfinite(s));
    EXPECT_GE(s, 0.0f);
    mx = std::max(mx, s);
  }
  EXPECT_GT(mx, 0.0f);
  auto feats = grad.ExplainFeaturesNnz(f.ds);
  EXPECT_EQ(static_cast<int64_t>(feats.size()), f.ds.features->nnz());
}

TEST(GradExplainerTest, SaliencyIsInformativeOnBaShapes) {
  auto& f = Shared();
  ex::GradExplainer grad(f.gcn.encoder());
  // Raw saliency is the weakest baseline (the paper's Table 4 shows it well
  // below the trained explainers); require it to carry signal in either
  // direction away from chance.
  const double auc =
      ses::metrics::ExplanationAuc(f.ds, grad.ExplainEdges(f.ds));
  EXPECT_GT(std::fabs(auc - 0.5), 0.03);
}

TEST(AttExplainerTest, ReadsAttentionFromGat) {
  auto& f = Shared();
  ex::AttExplainer att(f.gat.encoder());
  auto scores = att.ExplainEdges(f.ds);
  ASSERT_EQ(scores.size(), f.ds.graph.edges().size());
  for (float s : scores) EXPECT_GE(s, 0.0f);
  // Attention is normalized per destination: not all identical.
  float mn = scores[0], mx = scores[0];
  for (float s : scores) {
    mn = std::min(mn, s);
    mx = std::max(mx, s);
  }
  EXPECT_GT(mx - mn, 1e-4f);
}

TEST(GnnExplainerTest, ExplainsRequestedNodesOnly) {
  auto& f = Shared();
  ex::GnnExplainer::Options opt;
  opt.epochs = 20;
  ex::GnnExplainer gex(f.gcn.encoder(), opt);
  std::vector<int64_t> one_node{f.nodes[0]};
  auto scores = gex.ExplainEdges(f.ds, one_node);
  // Only edges in the node's 2-hop neighborhood receive scores.
  auto sub = ses::graph::ExtractEgoNet(f.ds.graph, f.nodes[0], 2);
  std::set<int64_t> ball(sub.nodes.begin(), sub.nodes.end());
  for (size_t i = 0; i < scores.size(); ++i) {
    auto [u, v] = f.ds.graph.edges()[i];
    if (scores[i] != 0.0f)
      EXPECT_TRUE(ball.count(u) && ball.count(v));
  }
}

TEST(GnnExplainerTest, FeatureAndEdgeScoresBounded) {
  auto& f = Shared();
  ex::GnnExplainer::Options opt;
  opt.epochs = 25;
  ex::GnnExplainer gex(f.gcn.encoder(), opt);
  auto edges = gex.ExplainEdges(f.ds, f.nodes);
  auto feats = gex.ExplainFeaturesNnz(f.ds, f.nodes);
  for (float s : edges) {
    EXPECT_GE(s, 0.0f);
    EXPECT_LE(s, 1.0f);
  }
  for (float s : feats) {
    EXPECT_GE(s, 0.0f);
    EXPECT_LE(s, 1.0f);
  }
}

TEST(PgExplainerTest, GlobalScoresBeatChance) {
  auto& f = Shared();
  ex::PgExplainer pge(f.gcn.encoder());
  auto scores = pge.ExplainEdges(f.ds);
  ASSERT_EQ(scores.size(), f.ds.graph.edges().size());
  EXPECT_GT(ses::metrics::ExplanationAuc(f.ds, scores), 0.45);
}

TEST(PgmExplainerTest, DependenceScoresNonNegative) {
  auto& f = Shared();
  ex::PgmExplainer::Options opt;
  opt.samples = 25;
  ex::PgmExplainer pgm(f.gcn.encoder(), opt);
  auto scores = pgm.ExplainEdges(f.ds, f.nodes);
  for (float s : scores) {
    EXPECT_GE(s, 0.0f);
    ASSERT_TRUE(std::isfinite(s));
  }
}

TEST(GraphLimeTest, FeatureScoresOnlyAndSparse) {
  auto& f = Shared();
  ex::GraphLimeExplainer lime(f.gcn.encoder());
  EXPECT_FALSE(lime.SupportsEdgeExplanations());
  EXPECT_TRUE(lime.SupportsFeatureExplanations());
  auto scores = lime.ExplainFeaturesNnz(f.ds, f.nodes);
  EXPECT_EQ(static_cast<int64_t>(scores.size()), f.ds.features->nnz());
  // Lasso selects: most coefficients zero, some positive.
  int64_t nonzero = 0;
  for (float s : scores) {
    EXPECT_GE(s, 0.0f);
    nonzero += s > 0.0f;
  }
  EXPECT_GT(nonzero, 0);
}

TEST(ExplainerCompareTest, TrainedMaskBeatsGradAtBenchmarkScale) {
  // Full-size BAShapes: the fixture's reduced graph leaves too few motif
  // training nodes for a stable mask equilibrium.
  auto ds = ses::data::MakeBaShapes();
  md::TrainConfig cfg;
  cfg.epochs = 150;
  cfg.hidden = 64;
  cfg.dropout = 0.2f;
  cfg.seed = 2;
  md::BackboneModel gcn("GCN");
  gcn.Fit(ds, cfg);
  ses::core::SesOptions opt;
  ses::core::SesModel model(opt);
  model.Fit(ds, cfg);
  const double ses_auc =
      ses::metrics::ExplanationAuc(ds, model.EdgeScores(ds));
  ex::GradExplainer grad(gcn.encoder());
  const double grad_auc =
      ses::metrics::ExplanationAuc(ds, grad.ExplainEdges(ds));
  EXPECT_GT(ses_auc, 0.6);
  // SES should at least be competitive with raw saliency.
  EXPECT_GT(ses_auc + 0.15, grad_auc);
}

}  // namespace
