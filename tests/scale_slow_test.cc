// Million-node data plane, >=100k-node legs (label: slow — Release job
// only; the small-N tier1 legs are in scale_test.cc). Checks that the
// generator stays deterministic, the partitioner keeps its invariants, and
// the bitwise shard-parity contract holds at a scale where the graph no
// longer fits in cache.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "core/inference_session.h"
#include "core/sharded_session.h"
#include "data/scale.h"
#include "models/encoders.h"
#include "util/rng.h"

namespace {

namespace c = ses::core;
namespace d = ses::data;

d::Dataset Graph100k(uint64_t seed = 42) {
  d::ScaleGraphOptions opt;
  opt.num_nodes = 100000;
  opt.seed = seed;
  return d::MakeScaleGraph(opt);
}

TEST(ScaleSlowTest, DeterministicAt100k) {
  EXPECT_EQ(d::DatasetDigest(Graph100k()), d::DatasetDigest(Graph100k()));
}

TEST(ScaleSlowTest, PartitionInvariantsAndBitwiseParityAt100k) {
  const d::Dataset ds = Graph100k();
  EXPECT_GT(ds.graph.num_edges(), 3 * ds.num_nodes());  // avg degree ~8

  ses::util::Rng rng(9);
  auto encoder = ses::models::MakeEncoder("GCN", ds.num_features(), 32,
                                          ds.num_classes, &rng);
  c::InferenceSession single(encoder.get(), &ds);
  c::ShardedSessionOptions opt;
  opt.partition.num_shards = 8;
  c::ShardedSession sharded(encoder.get(), &ds, opt);

  // Partition invariants at scale: every node owned once, every edge
  // assigned exactly once, capacity respected.
  const ses::graph::Partition& part = sharded.partition();
  int64_t owned_nodes = 0, owned_edges = 0;
  for (const auto& shard : part.shards) {
    owned_nodes += static_cast<int64_t>(shard.owned.size());
    owned_edges += shard.num_owned_edges;
  }
  EXPECT_EQ(owned_nodes, ds.num_nodes());
  EXPECT_EQ(owned_edges, ds.graph.num_edges());
  // Integral capacity bound (ceil rounding can overshoot the raw slack).
  const auto capacity = static_cast<int64_t>(
      std::ceil(part.options.balance_slack *
                static_cast<double>(ds.num_nodes()) / 8.0));
  for (const auto& shard : part.shards)
    EXPECT_LE(static_cast<int64_t>(shard.owned.size()), capacity);
  EXPECT_GT(part.edge_cut_fraction(), 0.0);
  EXPECT_LT(part.edge_cut_fraction(), 1.0);

  // Bitwise parity: full argmax agreement plus exact logit rows on a sample.
  std::vector<int64_t> all(static_cast<size_t>(ds.num_nodes()));
  for (int64_t i = 0; i < ds.num_nodes(); ++i) all[static_cast<size_t>(i)] = i;
  EXPECT_EQ(single.PredictMany(all), sharded.PredictMany(all));

  std::vector<int64_t> sample;
  for (int i = 0; i < 2048; ++i)
    sample.push_back(static_cast<int64_t>(
        rng.UniformInt(static_cast<uint64_t>(ds.num_nodes()))));
  const auto a = single.GatherLogits(sample);
  const auto b = sharded.GatherLogits(sample);
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.rows() * a.cols()) *
                            sizeof(float)),
            0);
}

}  // namespace
