// Cross-module integration tests: the full SES pipeline against its
// backbone, explanation quality end-to-end, and the Fidelity+ loop through
// models + explainers + metrics.
#include <gtest/gtest.h>

#include "core/ses_model.h"
#include "data/real_world.h"
#include "data/synthetic.h"
#include "explain/grad_att.h"
#include "metrics/fidelity.h"
#include "metrics/metrics.h"
#include "models/backbone_models.h"

using namespace ses;

namespace {

TEST(IntegrationTest, SesMatchesOrBeatsBackboneOnHomophilousGraph) {
  auto ds = data::MakeRealWorldByName("Cora", /*scale=*/0.12, /*seed=*/11);
  models::TrainConfig cfg;
  cfg.epochs = 60;
  cfg.hidden = 32;
  cfg.dropout = 0.3f;
  cfg.seed = 2;

  models::BackboneModel gcn("GCN");
  gcn.Fit(ds, cfg);
  const double gcn_acc =
      models::Accuracy(gcn.Logits(ds), ds.labels, ds.test_idx);

  core::SesOptions opt;
  opt.backbone = "GCN";
  core::SesModel model(opt);
  model.Fit(ds, cfg);
  const double ses_acc =
      models::Accuracy(model.Logits(ds), ds.labels, ds.test_idx);

  EXPECT_GT(gcn_acc, 0.5);
  // The paper's central prediction claim, with slack for the tiny graph.
  EXPECT_GT(ses_acc, gcn_acc - 0.05);
}

TEST(IntegrationTest, ExplanationAucHighOnBaShapes) {
  auto ds = data::MakeBaShapes();
  core::SesOptions opt;
  opt.backbone = "GCN";
  core::SesModel model(opt);
  models::TrainConfig cfg;
  cfg.epochs = 150;
  cfg.hidden = 64;
  cfg.dropout = 0.2f;
  cfg.seed = 1;
  model.Fit(ds, cfg);
  EXPECT_GT(metrics::ExplanationAuc(ds, model.EdgeScores(ds)), 0.75);
}

TEST(IntegrationTest, FidelityLoopProducesSignedSignal) {
  auto ds = data::MakeRealWorldByName("Cora", 0.12, 5);
  models::TrainConfig cfg;
  cfg.epochs = 50;
  cfg.hidden = 32;
  cfg.seed = 3;
  models::BackboneModel gcn("GCN");
  gcn.Fit(ds, cfg);
  // Saliency-ranked top features should matter more than inverse-ranked.
  explain::GradExplainer grad(gcn.encoder());
  auto scores = grad.ExplainFeaturesNnz(ds);
  const double fid_top =
      metrics::FidelityPlus(&gcn, ds, scores, 5, ds.test_idx);
  std::vector<float> inverted(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) inverted[i] = -scores[i];
  const double fid_bottom =
      metrics::FidelityPlus(&gcn, ds, inverted, 5, ds.test_idx);
  EXPECT_GE(fid_top, fid_bottom - 1.0);
}

TEST(IntegrationTest, MaskSnapshotsEvolveDuringTraining) {
  data::SyntheticOptions sopt;
  sopt.scale = 0.2;
  auto ds = data::MakeBaShapes(sopt);
  core::SesOptions opt;
  core::SesModel model(opt);
  models::TrainConfig cfg;
  cfg.epochs = 50;
  cfg.hidden = 32;
  cfg.seed = 4;
  model.Fit(ds, cfg);
  ASSERT_EQ(model.mask_snapshots().size(), 3u);
  // The Figure-7 claim: masks diverge from their near-uniform start.
  const auto& first = model.mask_snapshots().front();
  const auto& last = model.mask_snapshots().back();
  EXPECT_GT(last.MaxAbsDiff(first), 0.01f);
  auto spread = [](const tensor::Tensor& m) { return m.Max() - m.Min(); };
  EXPECT_GT(spread(last), spread(first) * 0.5f);
}

TEST(IntegrationTest, LossHistoryDecreases) {
  auto ds = data::MakeRealWorldByName("CiteSeer", 0.1, 6);
  core::SesOptions opt;
  core::SesModel model(opt);
  models::TrainConfig cfg;
  cfg.epochs = 60;
  cfg.hidden = 32;
  cfg.seed = 5;
  model.Fit(ds, cfg);
  const auto& history = model.loss_history();
  ASSERT_GE(history.size(), 20u);
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 5; ++i) {
    early += history[static_cast<size_t>(i)][1];
    late += history[history.size() - 1 - static_cast<size_t>(i)][1];
  }
  EXPECT_LT(late, early);
}

}  // namespace
