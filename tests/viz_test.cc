#include <gtest/gtest.h>
#include <cmath>

#include <fstream>

#include "data/synthetic.h"
#include "metrics/metrics.h"
#include "tensor/tensor.h"
#include "viz/graph_export.h"
#include "viz/tsne.h"

namespace v = ses::viz;
namespace t = ses::tensor;

namespace {

TEST(TsneTest, OutputShape) {
  ses::util::Rng rng(1);
  t::Tensor data = t::Tensor::Randn(50, 10, &rng);
  v::TsneOptions opt;
  opt.iterations = 60;
  t::Tensor y = v::Tsne(data, opt);
  EXPECT_EQ(y.rows(), 50);
  EXPECT_EQ(y.cols(), 2);
  for (int64_t i = 0; i < y.size(); ++i) ASSERT_TRUE(std::isfinite(y[i]));
}

TEST(TsneTest, PreservesClusterStructure) {
  // Two well-separated Gaussian blobs in 10-D must stay separated in 2-D.
  ses::util::Rng rng(2);
  const int64_t n = 60;
  t::Tensor data(n, 10);
  std::vector<int64_t> labels(n);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t c = i < n / 2 ? 0 : 1;
    labels[static_cast<size_t>(i)] = c;
    for (int64_t j = 0; j < 10; ++j)
      data.At(i, j) = static_cast<float>(rng.Normal(c * 8.0, 0.5));
  }
  v::TsneOptions opt;
  opt.iterations = 250;
  t::Tensor y = v::Tsne(data, opt);
  EXPECT_GT(ses::metrics::SilhouetteScore(y, labels), 0.3);
}

TEST(TsneTest, DeterministicForSeed) {
  ses::util::Rng rng(3);
  t::Tensor data = t::Tensor::Randn(30, 5, &rng);
  v::TsneOptions opt;
  opt.iterations = 40;
  t::Tensor a = v::Tsne(data, opt);
  t::Tensor b = v::Tsne(data, opt);
  EXPECT_FLOAT_EQ(a.MaxAbsDiff(b), 0.0f);
}

TEST(GraphExportTest, SvgContainsNodesAndEdges) {
  ses::data::SyntheticOptions opt;
  opt.scale = 0.1;
  auto ds = ses::data::MakeBaShapes(opt);
  int64_t center = 0;
  for (int64_t i = 0; i < ds.num_nodes(); ++i)
    if (ds.in_motif[static_cast<size_t>(i)]) {
      center = i;
      break;
    }
  auto sub = ses::graph::ExtractEgoNet(ds.graph, center, 2);
  std::vector<float> weights(static_cast<size_t>(sub.graph.num_edges()), 0.5f);
  std::string svg = v::SubgraphToSvg(sub, ds.labels, weights, sub.center_local);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One circle per node, one line per edge.
  size_t circles = 0, lines = 0;
  for (size_t pos = 0; (pos = svg.find("<circle", pos)) != std::string::npos;
       ++pos)
    ++circles;
  for (size_t pos = 0; (pos = svg.find("<line", pos)) != std::string::npos;
       ++pos)
    ++lines;
  EXPECT_EQ(circles, static_cast<size_t>(sub.graph.num_nodes()));
  EXPECT_EQ(lines, static_cast<size_t>(sub.graph.num_edges()));
}

TEST(GraphExportTest, DotIsWellFormed) {
  ses::graph::Graph g =
      ses::graph::Graph::FromUndirectedEdges(3, {{0, 1}, {1, 2}});
  ses::graph::Subgraph sub;
  sub.graph = g;
  sub.nodes = {10, 11, 12};
  sub.local_of = {};
  std::vector<int64_t> labels(13, 0);
  std::string dot = v::SubgraphToDot(sub, labels, {0.2f, 0.9f}, 1);
  EXPECT_NE(dot.find("graph explanation {"), std::string::npos);
  EXPECT_NE(dot.find("n10 -- n11"), std::string::npos);
  EXPECT_NE(dot.find("}"), std::string::npos);
}

TEST(GraphExportTest, HeatmapPgmRoundTrip) {
  t::Tensor m{{0.0f, 0.5f}, {1.0f, 0.25f}};
  const std::string path = "test_artifacts/heat.pgm";
  v::WriteHeatmapPgm(m, path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P5");
  int w, h, maxval;
  in >> w >> h >> maxval;
  EXPECT_EQ(w, 2);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  unsigned char pix[4];
  in.read(reinterpret_cast<char*>(pix), 4);
  EXPECT_EQ(pix[0], 0);    // min
  EXPECT_EQ(pix[2], 255);  // max
}

TEST(GraphExportTest, ScatterSvgHasOnePointPerRow) {
  ses::util::Rng rng(4);
  t::Tensor points = t::Tensor::Randn(25, 2, &rng);
  std::vector<int64_t> labels(25, 1);
  std::string svg = v::ScatterToSvg(points, labels, "demo");
  size_t circles = 0;
  for (size_t pos = 0; (pos = svg.find("<circle", pos)) != std::string::npos;
       ++pos)
    ++circles;
  EXPECT_EQ(circles, 25u);
  EXPECT_NE(svg.find("demo"), std::string::npos);
}

}  // namespace
