// Tests for the serving-grade observability layer: Prometheus exposition
// (parse-back, label escaping, bucket ordering), the embedded metrics
// server, request-scoped tracing and the access log, SLO burn-rate math,
// model-health statistics, and registry thread-safety under a concurrent
// scrape. Run the binary under TSan (SES_SANITIZE=thread) to exercise the
// shared-lock registry paths with real data races on the line.
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nn/linear.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace {

using namespace ses;
using obs::MetricsRegistry;

/// Drops all singleton observability state. SloTracker and AnomalyWatch
/// cache registry pointers, so they must be reset before the registry that
/// owns them.
void ResetObsState() {
  obs::SloTracker::Get().ResetForTest();
  obs::ModelHealthMonitor::Get().ResetForTest();
  obs::AnomalyWatch::Get().ResetForTest();
  obs::FlightRecorder::Get().ResetForTest();
  MetricsRegistry::Get().ResetForTest();
  obs::ResetTracing();
  obs::EnableTracing(false);
  obs::AccessLog::Get().Close();
}

// ---------------------------------------------------------------------------
// Prometheus exposition: a small parser strong enough to prove the exporter
// round-trips names, labels and histogram series.

struct PromSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

/// Parses `name{k="v",...} value` with Prometheus label unescaping.
PromSample ParseSample(const std::string& line) {
  PromSample sample;
  size_t pos = line.find('{');
  const size_t space = line.rfind(' ');
  if (pos == std::string::npos || pos > space) {
    pos = line.find(' ');
    sample.name = line.substr(0, pos);
  } else {
    sample.name = line.substr(0, pos);
    ++pos;  // past '{'
    while (line[pos] != '}') {
      const size_t eq = line.find('=', pos);
      const std::string key = line.substr(pos, eq - pos);
      pos = eq + 2;  // past ="
      std::string value;
      while (line[pos] != '"') {
        if (line[pos] == '\\') {
          ++pos;
          if (line[pos] == 'n') value += '\n';
          else value += line[pos];
          ++pos;
          continue;
        }
        value += line[pos++];
      }
      ++pos;  // past closing quote
      sample.labels[key] = value;
      if (line[pos] == ',') ++pos;
    }
  }
  sample.value = std::stod(line.substr(space + 1));
  return sample;
}

TEST(PrometheusTest, LabelValuesRoundTripThroughEscaping) {
  ResetObsState();
  auto& registry = MetricsRegistry::Get();
  const std::string tricky = "a\"b\\c\nd,e={}";
  registry.GetCounter("ses.test.requests", {{"op", tricky}}).Add(7);

  std::ostringstream out;
  registry.WritePrometheus(out);
  bool found = false;
  std::istringstream lines(out.str());
  for (std::string line; std::getline(lines, line);) {
    if (line.empty() || line[0] == '#') continue;
    const PromSample sample = ParseSample(line);
    if (sample.name != "ses_test_requests") continue;
    found = true;
    EXPECT_EQ(sample.labels.at("op"), tricky);
    EXPECT_DOUBLE_EQ(sample.value, 7.0);
  }
  EXPECT_TRUE(found);
}

TEST(PrometheusTest, LabelOrderIsCanonicalAcrossCallSites) {
  ResetObsState();
  auto& registry = MetricsRegistry::Get();
  obs::Counter& a =
      registry.GetCounter("ses.test.c", {{"x", "1"}, {"y", "2"}});
  obs::Counter& b =
      registry.GetCounter("ses.test.c", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&a, &b) << "label order must not create a second time series";
}

TEST(PrometheusTest, HistogramSeriesIsCumulativeWithAscendingLe) {
  ResetObsState();
  auto& registry = MetricsRegistry::Get();
  obs::Histogram& hist =
      registry.GetHistogram("ses.test.latency", {{"op", "q"}}, {1.0, 2.0, 10.0});
  hist.Observe(0.5);
  hist.Observe(1.5);
  hist.Observe(5.0);
  hist.Observe(100.0);

  std::ostringstream out;
  registry.WritePrometheus(out);
  std::istringstream lines(out.str());
  std::vector<PromSample> buckets;
  int type_headers = 0;
  double sum = -1, count = -1;
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("# TYPE ses_test_latency", 0) == 0) {
      ++type_headers;
      EXPECT_NE(line.find("histogram"), std::string::npos);
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    const PromSample sample = ParseSample(line);
    if (sample.name == "ses_test_latency_bucket") buckets.push_back(sample);
    if (sample.name == "ses_test_latency_sum") sum = sample.value;
    if (sample.name == "ses_test_latency_count") count = sample.value;
  }
  EXPECT_EQ(type_headers, 1) << "exactly one # TYPE line per family";
  ASSERT_EQ(buckets.size(), 4u);  // 3 edges + +Inf
  // Cumulative counts: <=1 -> 1, <=2 -> 2, <=10 -> 3, +Inf -> 4.
  EXPECT_EQ(buckets[0].labels.at("le"), "1");
  EXPECT_DOUBLE_EQ(buckets[0].value, 1.0);
  EXPECT_DOUBLE_EQ(buckets[1].value, 2.0);
  EXPECT_DOUBLE_EQ(buckets[2].value, 3.0);
  EXPECT_EQ(buckets[3].labels.at("le"), "+Inf");
  EXPECT_DOUBLE_EQ(buckets[3].value, 4.0);
  for (const auto& b : buckets) EXPECT_EQ(b.labels.at("op"), "q");
  EXPECT_DOUBLE_EQ(sum, 107.0);
  EXPECT_DOUBLE_EQ(count, 4.0);
}

TEST(HistogramTest, QuantilesInterpolateInsideBuckets) {
  obs::Histogram hist({10.0, 20.0, 40.0});
  // 10 observations in (10, 20]: the q-th observation interpolates linearly
  // across that bucket's width.
  for (int i = 0; i < 10; ++i) hist.Observe(15.0);
  EXPECT_DOUBLE_EQ(hist.P50(), 15.0);   // 5th of 10 -> midpoint of (10, 20]
  EXPECT_DOUBLE_EQ(hist.Quantile(1.0), 20.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.0), 10.0);
  // Overflow observations saturate at the last edge instead of inventing an
  // upper bound.
  hist.Observe(1e9);
  EXPECT_DOUBLE_EQ(hist.P999(), 40.0);
  EXPECT_EQ(hist.Count(), 11);
}

// ---------------------------------------------------------------------------
// Embedded metrics server, exercised through a real socket.

std::string HttpGet(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  EXPECT_GT(::send(fd, request.data(), request.size(), 0), 0);
  std::string response;
  char buf[4096];
  for (ssize_t n; (n = ::recv(fd, buf, sizeof(buf), 0)) > 0;)
    response.append(buf, static_cast<size_t>(n));
  ::close(fd);
  return response;
}

TEST(MetricsServerTest, ServesMetricsHealthzAndSpansOnEphemeralPort) {
  ResetObsState();
  MetricsRegistry::Get().GetCounter("ses.test.live").Add(3);
  obs::SloTracker::Get().SetBudget("op.a", 100.0);

  obs::MetricsServer server;
  ASSERT_TRUE(server.Start(0));
  ASSERT_NE(server.port(), 0);

  const std::string metrics =
      HttpGet(server.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("ses_test_live 3"), std::string::npos);
  EXPECT_NE(metrics.find("ses_slo_latency_budget_us"), std::string::npos);

  const std::string health =
      HttpGet(server.port(), "GET /healthz?verbose=1 HTTP/1.0\r\n\r\n");
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.find("\"op\":\"op.a\""), std::string::npos);

  const std::string spans = HttpGet(server.port(), "GET /spans HTTP/1.0\r\n\r\n");
  EXPECT_NE(spans.find("application/json"), std::string::npos);

  EXPECT_NE(HttpGet(server.port(), "GET /nope HTTP/1.0\r\n\r\n")
                .find("404 Not Found"),
            std::string::npos);
  EXPECT_NE(HttpGet(server.port(), "POST /metrics HTTP/1.0\r\n\r\n")
                .find("405 Method Not Allowed"),
            std::string::npos);

  EXPECT_GE(server.requests_served(), 5);
  server.Stop();
}

TEST(MetricsServerTest, LargeScrapeBodySurvivesPartialSends) {
  ResetObsState();
  // Thousands of labeled series push the /metrics body well past any socket
  // buffer, forcing SendAll through multiple partial send() calls. The body
  // must arrive complete and match its Content-Length exactly — a truncated
  // scrape silently drops whole metric families.
  auto& registry = MetricsRegistry::Get();
  for (int i = 0; i < 4000; ++i)
    registry
        .GetCounter("ses.test.big",
                    {{"kernel", "k" + std::to_string(i)},
                     {"variant", "a_rather_long_variant_label_value_" +
                                     std::to_string(i)}})
        .Add(i);

  obs::MetricsServer server;
  ASSERT_TRUE(server.Start(0));
  const std::string response =
      HttpGet(server.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  server.Stop();

  const size_t header_end = response.find("\r\n\r\n");
  ASSERT_NE(header_end, std::string::npos);
  const std::string headers = response.substr(0, header_end);
  const std::string body = response.substr(header_end + 4);
  EXPECT_GT(body.size(), 256u * 1024) << "test body too small to be probative";

  const size_t cl = headers.find("Content-Length: ");
  ASSERT_NE(cl, std::string::npos);
  const size_t declared =
      std::stoul(headers.substr(cl + std::strlen("Content-Length: ")));
  EXPECT_EQ(body.size(), declared)
      << "scrape body truncated: partial send() handling is broken";
  // The last series written must have made it through intact.
  EXPECT_NE(body.find("kernel=\"k3999\""), std::string::npos);
  EXPECT_EQ(server.port(), 0);
  // A stopped server can be restarted.
  ASSERT_TRUE(server.Start(0));
  server.Stop();
}

// ---------------------------------------------------------------------------
// Request scopes: trace-id allocation, propagation, span tagging, access log.

TEST(RequestScopeTest, NestedScopesShareOneIdAndThreadsGetFreshOnes) {
  ResetObsState();
  uint64_t outer_id = 0, inner_id = 0, thread_id = 0;
  {
    obs::RequestScope outer("op.outer");
    outer_id = outer.trace_id();
    EXPECT_TRUE(outer.owner());
    EXPECT_EQ(obs::CurrentTraceId(), outer_id);
    {
      obs::RequestScope inner("op.inner");
      inner_id = inner.trace_id();
      EXPECT_FALSE(inner.owner());
    }
    // A sibling thread is outside the request: it must not inherit the id.
    std::thread([&] {
      EXPECT_EQ(obs::CurrentTraceId(), 0u);
      obs::RequestScope scope("op.thread");
      thread_id = scope.trace_id();
    }).join();
  }
  EXPECT_EQ(obs::CurrentTraceId(), 0u);
  EXPECT_NE(outer_id, 0u);
  EXPECT_EQ(inner_id, outer_id);
  EXPECT_NE(thread_id, outer_id);
}

TEST(RequestScopeTest, SpansOpenedInsideARequestCarryItsTraceId) {
  ResetObsState();
  obs::EnableTracing(true);
  uint64_t id = 0;
  {
    obs::RequestScope scope("op.traced");
    id = scope.trace_id();
    SES_TRACE_SPAN("op.traced.child");
  }
  { SES_TRACE_SPAN("op.orphan"); }
  int tagged = 0;
  for (const obs::TraceEvent& ev : obs::SnapshotEvents()) {
    if (std::string(ev.label) == "op.orphan") {
      EXPECT_EQ(ev.trace_id, 0u);
    }
    if (ev.trace_id == id) ++tagged;
  }
  EXPECT_GE(tagged, 2) << "the request span and its child must both be tagged";
}

TEST(AccessLogTest, EntrySerializationMatchesTheDocumentedSchema) {
  obs::AccessEntry entry;
  entry.trace_id = 42;
  entry.op = "infer.predict";
  entry.latency_us = 12.5;
  entry.cache_hit = true;
  entry.digest = 0xdeadbeefull;
  // Reason is always present: empty defaults to "ok" on success so the CI
  // forensics joins (jq .reason) never hit a missing key.
  EXPECT_EQ(obs::AccessLog::EntryToJson(entry),
            "{\"trace_id\":42,\"op\":\"infer.predict\",\"latency_us\":12.5,"
            "\"cache_hit\":true,\"error\":false,\"reason\":\"ok\","
            "\"digest\":\"00000000deadbeef\"}");

  // An error with no explicit reason defaults to "error"; an explicit reason
  // wins over both defaults.
  entry.error = true;
  EXPECT_NE(obs::AccessLog::EntryToJson(entry).find("\"reason\":\"error\""),
            std::string::npos);
  entry.reason = "deadline";
  EXPECT_NE(obs::AccessLog::EntryToJson(entry).find("\"reason\":\"deadline\""),
            std::string::npos);
}

TEST(AccessLogTest, StageOffsetsSerializeInCriticalPathOrder) {
  obs::AccessEntry entry;
  entry.trace_id = 7;
  entry.op = "sched.predict";
  entry.latency_us = 60.0;
  entry.has_stages = true;
  entry.admit_us = 1.5;
  entry.seal_us = 10.0;
  entry.forward_start_us = 12.0;
  entry.forward_end_us = 50.0;
  entry.resolve_us = 60.0;
  const std::string line = obs::AccessLog::EntryToJson(entry);
  EXPECT_NE(line.find("\"stages_us\":{\"admit\":1.5,\"seal\":10,"
                      "\"forward_start\":12,\"forward_end\":50,"
                      "\"resolve\":60}"),
            std::string::npos)
      << line;
  // Direct-path entries (has_stages unset) must not emit the block at all.
  entry.has_stages = false;
  EXPECT_EQ(obs::AccessLog::EntryToJson(entry).find("stages_us"),
            std::string::npos);
}

TEST(AccessLogTest, RequestScopesWriteOneLineEach) {
  ResetObsState();
  const std::string path = ::testing::TempDir() + "/access_log_test.jsonl";
  ASSERT_TRUE(obs::AccessLog::Get().Open(path));
  {
    obs::RequestScope scope("op.logged");
    scope.NoteCacheHit(true);
    scope.SetDigest(7);
    obs::RequestScope nested("op.silent");  // not the owner: no line
  }
  obs::AccessLog::Get().Close();
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"op\":\"op.logged\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"cache_hit\":true"), std::string::npos);
  EXPECT_NE(lines[0].find("\"digest\":\"0000000000000007\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// SLO tracker.

TEST(SloTrackerTest, BurnRateMatchesTheRollingWindowDefinition) {
  ResetObsState();
  auto& slo = obs::SloTracker::Get();
  slo.SetBudget("op.fast", /*latency_budget_us=*/100.0, /*target=*/0.9,
                /*window=*/10);
  // 7 in budget + 3 breaches: burn = (3 / 10) / (1 - 0.9) = 3.0.
  for (int i = 0; i < 7; ++i) slo.Record("op.fast", 50.0);
  for (int i = 0; i < 3; ++i) slo.Record("op.fast", 500.0);
  obs::SloTracker::OpSnapshot snap = slo.Snapshot("op.fast");
  EXPECT_EQ(snap.requests, 10);
  EXPECT_EQ(snap.breaches, 3);
  EXPECT_EQ(snap.errors, 0);
  EXPECT_DOUBLE_EQ(snap.burn_rate, 3.0);

  // A full window of healthy requests flushes the breaches back out.
  for (int i = 0; i < 10; ++i) slo.Record("op.fast", 1.0);
  snap = slo.Snapshot("op.fast");
  EXPECT_EQ(snap.requests, 20);
  EXPECT_EQ(snap.breaches, 3) << "cumulative counter must not roll";
  EXPECT_DOUBLE_EQ(snap.burn_rate, 0.0);

  // Errors burn budget even when fast, and unbudgeted ops are ignored.
  slo.Record("op.fast", 1.0, /*error=*/true);
  EXPECT_EQ(slo.Snapshot("op.fast").errors, 1);
  slo.Record("op.unknown", 1.0);
  EXPECT_EQ(slo.Snapshot("op.unknown").requests, 0);

  // The mirrored metric family is labeled by op.
  std::ostringstream out;
  MetricsRegistry::Get().WritePrometheus(out);
  EXPECT_NE(out.str().find("ses_slo_requests{op=\"op.fast\"} 21"),
            std::string::npos);
}

TEST(SloTrackerTest, PartialWindowUsesSeenRequestsNotCapacity) {
  ResetObsState();
  auto& slo = obs::SloTracker::Get();
  slo.SetBudget("op.partial", 100.0, /*target=*/0.5, /*window=*/100);
  slo.Record("op.partial", 500.0);
  slo.Record("op.partial", 1.0);
  // 1 breach over the 2 requests seen (not over the window capacity of 100):
  // burn = (1/2) / (1 - 0.5) = 1.0.
  EXPECT_DOUBLE_EQ(slo.Snapshot("op.partial").burn_rate, 1.0);
}

TEST(SloTrackerTest, RecordManyMatchesNRecordsExactly) {
  ResetObsState();
  auto& slo = obs::SloTracker::Get();
  slo.SetBudget("op.one", 100.0, /*target=*/0.9, /*window=*/10);
  slo.SetBudget("op.many", 100.0, /*target=*/0.9, /*window=*/10);
  const std::vector<double> batch = {50.0, 500.0, 99.0, 101.0, 1.0,
                                     1.0,  1.0,   1.0,  300.0, 2.0};
  for (double v : batch) slo.Record("op.one", v);
  slo.RecordMany("op.many", batch.data(), static_cast<int64_t>(batch.size()));

  const auto one = slo.Snapshot("op.one");
  const auto many = slo.Snapshot("op.many");
  EXPECT_EQ(many.requests, one.requests);
  EXPECT_EQ(many.breaches, one.breaches);
  EXPECT_DOUBLE_EQ(many.burn_rate, one.burn_rate);

  // A second batch wraps the ring and must flush old breaches identically.
  const std::vector<double> healthy(10, 1.0);
  slo.RecordMany("op.many", healthy.data(), 10);
  for (double v : healthy) slo.Record("op.one", v);
  EXPECT_DOUBLE_EQ(slo.Snapshot("op.many").burn_rate,
                   slo.Snapshot("op.one").burn_rate);
  EXPECT_DOUBLE_EQ(slo.Snapshot("op.many").burn_rate, 0.0);

  // Unbudgeted and empty batches are ignored.
  slo.RecordMany("op.unknown", batch.data(), 3);
  EXPECT_EQ(slo.Snapshot("op.unknown").requests, 0);
  slo.RecordMany("op.many", batch.data(), 0);
  EXPECT_EQ(slo.Snapshot("op.many").requests, 20);
}

TEST(SloTrackerTest, IdleGapResetsTheRollingWindow) {
  ResetObsState();
  auto& slo = obs::SloTracker::Get();
  slo.SetBudget("op.idle", /*latency_budget_us=*/100.0, /*target=*/0.5,
                /*window=*/8, /*idle_reset_us=*/20'000.0);
  for (int i = 0; i < 4; ++i) slo.Record("op.idle", 500.0);
  EXPECT_DOUBLE_EQ(slo.Snapshot("op.idle").burn_rate, 2.0);

  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  // A stale window reads as 0 even before the next sample arrives — an
  // admission controller must not shed morning traffic over last night's
  // spike.
  EXPECT_DOUBLE_EQ(slo.Snapshot("op.idle").burn_rate, 0.0);

  // The first sample after the gap starts a fresh window: one healthy
  // request out of one seen, not one out of five.
  slo.Record("op.idle", 1.0);
  EXPECT_DOUBLE_EQ(slo.Snapshot("op.idle").burn_rate, 0.0);
  slo.Record("op.idle", 500.0);
  // 1 breach / 2 seen over error budget 0.5 — the pre-idle spike is gone.
  EXPECT_DOUBLE_EQ(slo.Snapshot("op.idle").burn_rate, 1.0);

  // Cumulative counters survive the window reset.
  const auto snap = slo.Snapshot("op.idle");
  EXPECT_EQ(snap.requests, 6);
  EXPECT_EQ(snap.breaches, 5);

  // idle_reset_us <= 0 disables the decay entirely.
  slo.SetBudget("op.sticky", 100.0, /*target=*/0.5, /*window=*/8,
                /*idle_reset_us=*/0.0);
  slo.Record("op.sticky", 500.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_DOUBLE_EQ(slo.Snapshot("op.sticky").burn_rate, 2.0);
}

TEST(HealthRegistryTest, ProvidersRegisterReplaceAndUnregister) {
  obs::RegisterHealthProvider("t.zeta", [] { return std::string("{\"z\":1}"); });
  obs::RegisterHealthProvider("t.alpha",
                              [] { return std::string("{\"a\":1}"); });

  auto find = [](const std::string& name)
      -> std::pair<int, std::string> {  // (sorted index, json) or (-1, "")
    const auto components = obs::CollectHealthComponents();
    for (size_t i = 0; i < components.size(); ++i)
      if (components[i].first == name)
        return {static_cast<int>(i), components[i].second};
    return {-1, ""};
  };

  // Both visible, sorted by name regardless of registration order.
  const auto alpha = find("t.alpha");
  const auto zeta = find("t.zeta");
  ASSERT_NE(alpha.first, -1);
  ASSERT_NE(zeta.first, -1);
  EXPECT_LT(alpha.first, zeta.first);
  EXPECT_EQ(alpha.second, "{\"a\":1}");

  // Re-registering a name replaces the provider in place.
  obs::RegisterHealthProvider("t.alpha",
                              [] { return std::string("{\"a\":2}"); });
  EXPECT_EQ(find("t.alpha").second, "{\"a\":2}");

  // Registered components render into /healthz under "components".
  obs::MetricsServer server;
  ASSERT_TRUE(server.Start(0));
  const std::string health = HttpGet(server.port(), "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(health.find("\"t.alpha\":{\"a\":2}"), std::string::npos);
  server.Stop();

  obs::UnregisterHealthProvider("t.zeta");
  obs::UnregisterHealthProvider("t.alpha");
  EXPECT_EQ(find("t.zeta").first, -1);
  EXPECT_EQ(find("t.alpha").first, -1);
  // Unregistering a never-registered name is a no-op.
  obs::UnregisterHealthProvider("t.never");
}

TEST(HistogramTest, ObserveManyMatchesNObserves) {
  obs::Histogram one(obs::Histogram::ExponentialEdges(1.0, 2.0, 8));
  obs::Histogram many(obs::Histogram::ExponentialEdges(1.0, 2.0, 8));
  std::vector<double> values;
  util::Rng rng(7);
  for (int i = 0; i < 257; ++i)
    values.push_back(rng.Uniform() * 300.0);  // spills into overflow too
  for (double v : values) one.Observe(v);
  many.ObserveMany(values.data(), static_cast<int64_t>(values.size()));
  ASSERT_EQ(many.Count(), one.Count());
  EXPECT_DOUBLE_EQ(many.Sum(), one.Sum());
  for (size_t b = 0; b <= many.edges().size(); ++b)
    EXPECT_EQ(many.BucketCount(b), one.BucketCount(b)) << "bucket " << b;
  EXPECT_DOUBLE_EQ(many.P99(), one.P99());
}

// ---------------------------------------------------------------------------
// Histogram exemplars: the per-bucket trace-id reservoir plus the OpenMetrics
// exposition suffix that joins a scraped bucket back to the access log and
// Chrome trace (DESIGN.md §15).

TEST(HistogramExemplarTest, TracedObservationsAreKeptLastWriteWins) {
  obs::Histogram hist({1.0, 2.0, 10.0});
  obs::Histogram::Exemplar ex;
  // Untraced observations never write the reservoir.
  hist.Observe(1.5);
  EXPECT_FALSE(hist.ReadExemplar(1, &ex));
  hist.Observe(1.5, /*trace_id=*/77);
  ASSERT_TRUE(hist.ReadExemplar(1, &ex));
  EXPECT_EQ(ex.trace_id, 77u);
  EXPECT_DOUBLE_EQ(ex.value, 1.5);
  // Last write wins within the bucket; other buckets stay empty.
  hist.Observe(1.9, 78);
  ASSERT_TRUE(hist.ReadExemplar(1, &ex));
  EXPECT_EQ(ex.trace_id, 78u);
  EXPECT_DOUBLE_EQ(ex.value, 1.9);
  EXPECT_FALSE(hist.ReadExemplar(0, &ex));
  EXPECT_FALSE(hist.ReadExemplar(2, &ex));
  EXPECT_FALSE(hist.ReadExemplar(3, &ex));
  // A later untraced observation must not clobber the stored exemplar.
  hist.Observe(1.2);
  ASSERT_TRUE(hist.ReadExemplar(1, &ex));
  EXPECT_EQ(ex.trace_id, 78u);
}

TEST(HistogramExemplarTest, ObserveInsideARequestScopeUsesItsTraceId) {
  ResetObsState();
  obs::Histogram hist({10.0});
  uint64_t id = 0;
  {
    obs::RequestScope scope("op.exemplar");
    id = scope.trace_id();
    hist.Observe(3.0);
  }
  obs::Histogram::Exemplar ex;
  ASSERT_TRUE(hist.ReadExemplar(0, &ex));
  EXPECT_EQ(ex.trace_id, id);
  // Outside any request CurrentTraceId() is 0: nothing is recorded.
  obs::Histogram bare({10.0});
  bare.Observe(3.0);
  EXPECT_FALSE(bare.ReadExemplar(0, &ex));
}

TEST(HistogramExemplarTest, ObserveManyKeepsTheLastTracedValuePerBucket) {
  obs::Histogram hist({1.0, 2.0, 10.0});
  const double values[] = {0.5, 1.5, 1.7, 100.0, 5.0};
  const uint64_t ids[] = {11, 12, 13, 14, 0};
  hist.ObserveMany(values, ids, 5);
  obs::Histogram::Exemplar ex;
  ASSERT_TRUE(hist.ReadExemplar(0, &ex));
  EXPECT_EQ(ex.trace_id, 11u);
  ASSERT_TRUE(hist.ReadExemplar(1, &ex));
  EXPECT_EQ(ex.trace_id, 13u) << "last traced value in (1,2] was 1.7 / id 13";
  EXPECT_DOUBLE_EQ(ex.value, 1.7);
  // Trace id 0 means untraced: the 5.0 landed in (2,10] but left no exemplar.
  EXPECT_FALSE(hist.ReadExemplar(2, &ex));
  ASSERT_TRUE(hist.ReadExemplar(3, &ex));
  EXPECT_EQ(ex.trace_id, 14u);
  // A null id array behaves exactly like the untraced overload.
  obs::Histogram plain({1.0, 2.0, 10.0});
  plain.ObserveMany(values, nullptr, 5);
  EXPECT_FALSE(plain.ReadExemplar(0, &ex));
  EXPECT_EQ(plain.Count(), 5);
}

/// Splits an OpenMetrics exemplar suffix (` # {trace_id="N"} V`) off a
/// /metrics line, leaving the plain sample behind for ParseSample.
struct ExemplarSuffix {
  bool present = false;
  uint64_t trace_id = 0;
  double value = 0.0;
};
ExemplarSuffix SplitExemplar(std::string* line) {
  ExemplarSuffix ex;
  const size_t hash = line->find(" # {");
  if (hash == std::string::npos) return ex;
  const std::string suffix = line->substr(hash + 3);
  line->resize(hash);
  ex.present = true;
  ex.trace_id = std::stoull(suffix.substr(suffix.find("trace_id=\"") + 10));
  // The exporter omits the optional timestamp precisely so this final
  // whitespace-separated token is a plain float.
  ex.value = std::stod(suffix.substr(suffix.rfind(' ') + 1));
  return ex;
}

TEST(PrometheusTest, ExemplarsRenderInOpenMetricsSyntax) {
  ResetObsState();
  auto& registry = MetricsRegistry::Get();
  // A tricky label value proves the exemplar suffix composes with escaping.
  const std::string tricky = "a\"b\\c";
  obs::Histogram& hist = registry.GetHistogram(
      "ses.test.exm", {{"op", tricky}}, {1.0, 2.0, 10.0});
  hist.Observe(0.4);                   // untraced: le="1" stays exemplar-free
  hist.Observe(1.5, /*trace_id=*/77);  // traced: le="2" carries it

  std::ostringstream out;
  registry.WritePrometheus(out);
  std::istringstream lines(out.str());
  int with_exemplar = 0, without = 0;
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("ses_test_exm_bucket", 0) != 0) continue;
    const ExemplarSuffix ex = SplitExemplar(&line);
    const PromSample sample = ParseSample(line);
    EXPECT_EQ(sample.labels.at("op"), tricky);
    if (ex.present) {
      ++with_exemplar;
      EXPECT_EQ(sample.labels.at("le"), "2");
      EXPECT_EQ(ex.trace_id, 77u) << "decimal id joins the access log";
      EXPECT_DOUBLE_EQ(ex.value, 1.5);
      EXPECT_DOUBLE_EQ(sample.value, 2.0)
          << "cumulative bucket count, not the exemplar value";
    } else {
      ++without;
    }
  }
  EXPECT_EQ(with_exemplar, 1) << "only the (1,2] bucket saw a traced hit";
  EXPECT_EQ(without, 3) << "le=1, le=10 and +Inf stay clean";
}

TEST(MetricsRegistryTest, ExemplarWritesRaceScrapesSafely) {
  ResetObsState();
  auto& registry = MetricsRegistry::Get();
  obs::Histogram& hist =
      registry.GetHistogram("ses.test.exm_hammer", {1.0, 10.0, 100.0});
  std::atomic<bool> stop{false};
  // Scraper thread: full exposition plus direct seqlock reads. Run under
  // TSan to put the lossy writer/bounded-retry reader races on the line.
  std::thread scraper([&] {
    while (!stop.load()) {
      std::ostringstream out;
      registry.WritePrometheus(out);
      obs::Histogram::Exemplar ex;
      for (size_t b = 0; b < 4; ++b) {
        if (hist.ReadExemplar(b, &ex)) EXPECT_NE(ex.trace_id, 0u);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&hist, t] {
      std::vector<double> batch(16);
      std::vector<uint64_t> ids(16);
      for (int i = 1; i <= 1000; ++i) {
        hist.Observe(static_cast<double>(i % 150), static_cast<uint64_t>(i));
        for (int j = 0; j < 16; ++j) {
          batch[static_cast<size_t>(j)] = static_cast<double>((i + j) % 150);
          ids[static_cast<size_t>(j)] =
              static_cast<uint64_t>(t * 1'000'000 + i + j);
        }
        hist.ObserveMany(batch.data(), ids.data(), 16);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  scraper.join();
  EXPECT_EQ(hist.Count(), 3 * 1000 * 17) << "counts are exact, only exemplars are lossy";
  // Quiescent reads see the last writer in every bucket (values 0..149 cover
  // all four buckets with nonzero ids).
  obs::Histogram::Exemplar ex;
  for (size_t b = 0; b < 4; ++b)
    EXPECT_TRUE(hist.ReadExemplar(b, &ex)) << "bucket " << b;
}

// ---------------------------------------------------------------------------
// Flight recorder: top-K retention, window roll, burn-triggered auto-dump.

TEST(FlightRecorderTest, KeepsTheTopKSlowestSlowestFirst) {
  auto& recorder = obs::FlightRecorder::Get();
  recorder.ResetForTest();
  recorder.Configure(/*top_k=*/4, /*window_us=*/1e12);
  for (int i = 1; i <= 10; ++i) {
    obs::FlightRecord rec;
    rec.trace_id = static_cast<uint64_t>(i);
    rec.op = "t.op";
    rec.resolve_us = 1000.0;  // one window for everything
    rec.e2e_us = static_cast<double>((i * 7) % 11);  // 7,3,10,6,2,9,5,1,8,4
    recorder.Record(rec);
  }
  const auto snap = recorder.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_DOUBLE_EQ(snap[0].e2e_us, 10.0);
  EXPECT_DOUBLE_EQ(snap[1].e2e_us, 9.0);
  EXPECT_DOUBLE_EQ(snap[2].e2e_us, 8.0);
  EXPECT_DOUBLE_EQ(snap[3].e2e_us, 7.0);
  recorder.ResetForTest();
}

TEST(FlightRecorderTest, WindowRollRetiresCurrentAndServesTwoWindows) {
  auto& recorder = obs::FlightRecorder::Get();
  recorder.ResetForTest();
  recorder.Configure(/*top_k=*/8, /*window_us=*/1000.0);
  auto record_at = [&](uint64_t id, double resolve_us, double e2e_us) {
    obs::FlightRecord rec;
    rec.trace_id = id;
    rec.op = "t.op";
    rec.resolve_us = resolve_us;
    rec.e2e_us = e2e_us;
    recorder.Record(rec);
  };
  record_at(1, 100.0, 5.0);   // window A opens at 100
  record_at(2, 1500.0, 3.0);  // 1400us elapsed: A retires to previous
  ASSERT_EQ(recorder.Snapshot().size(), 2u)
      << "/debug/slowest keeps the previous window for context";
  record_at(3, 2900.0, 4.0);  // B retires; window A's record ages out
  const auto snap = recorder.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].trace_id, 3u);  // merged output stays slowest-first
  EXPECT_EQ(snap[1].trace_id, 2u);
  recorder.ResetForTest();
}

TEST(FlightRecorderTest, BurnTriggeredDumpFiresOncePerExcursion) {
  ResetObsState();
  auto& recorder = obs::FlightRecorder::Get();
  obs::FlightRecord rec;
  rec.trace_id = 5;
  rec.op = "t.op";
  rec.e2e_us = 9.0;
  rec.resolve_us = 50.0;
  recorder.Record(rec);

  const std::string path = ::testing::TempDir() + "/flight_dump_test.json";
  std::remove(path.c_str());
  recorder.ArmAutoDump(path, /*burn_threshold=*/2.0);
  recorder.ObserveBurn(1.0);  // below threshold: armed but quiet
  EXPECT_EQ(recorder.dumps(), 0);
  recorder.ObserveBurn(2.0);  // crossing dumps exactly once
  EXPECT_EQ(recorder.dumps(), 1);
  recorder.ObserveBurn(5.0);  // same excursion: no second dump
  recorder.ObserveBurn(1.5);  // above threshold/2: hysteresis holds
  recorder.ObserveBurn(5.0);
  EXPECT_EQ(recorder.dumps(), 1);
  recorder.ObserveBurn(0.9);  // recedes below threshold/2: re-arms
  recorder.ObserveBurn(3.0);  // next excursion dumps again
  EXPECT_EQ(recorder.dumps(), 2);

  std::ifstream in(path);
  std::stringstream dumped;
  dumped << in.rdbuf();
  EXPECT_NE(dumped.str().find("\"trace_id\":5"), std::string::npos);
  EXPECT_NE(dumped.str().find("\"records\":["), std::string::npos);
  EXPECT_EQ(MetricsRegistry::Get().GetCounter("ses.flight.dumps").Value(), 2);
  recorder.ResetForTest();
  std::remove(path.c_str());
}

TEST(MetricsServerTest, DebugSlowestServesStageTimestamps) {
  ResetObsState();
  obs::FlightRecord rec;
  rec.trace_id = 9001;
  rec.op = "sched.predict";
  rec.reason = "ok";
  rec.submit_us = 100.0;
  rec.admit_us = 101.0;
  rec.seal_us = 110.0;
  rec.forward_start_us = 112.0;
  rec.forward_end_us = 150.0;
  rec.resolve_us = 160.0;
  rec.e2e_us = 60.0;
  obs::FlightRecorder::Get().Record(rec);

  std::string body, content_type;
  ASSERT_TRUE(
      obs::MetricsServer::RenderEndpoint("/debug/slowest", &body, &content_type));
  EXPECT_EQ(content_type, "application/json");
  EXPECT_NE(body.find("\"trace_id\":9001"), std::string::npos);
  EXPECT_NE(body.find("\"reason\":\"ok\""), std::string::npos);
  EXPECT_NE(
      body.find("\"stages_us\":{\"submit\":100,\"admit\":101,\"seal\":110,"
                "\"forward_start\":112,\"forward_end\":150,\"resolve\":160}"),
      std::string::npos)
      << body;

  // And over a real socket, the way an operator reaches it.
  obs::MetricsServer server;
  ASSERT_TRUE(server.Start(0));
  const std::string response =
      HttpGet(server.port(), "GET /debug/slowest HTTP/1.0\r\n\r\n");
  server.Stop();
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"trace_id\":9001"), std::string::npos);
}

TEST(MetricsServerTest, HealthzSnapshotsComponentsBeforeSerializing) {
  ResetObsState();
  // Providers churn while /healthz renders. The copy-then-serialize contract
  // means a provider unregistered mid-render was either fully included or
  // fully absent — never observed half-destroyed. Run under TSan.
  std::atomic<bool> stop{false};
  std::thread churner([&] {
    int i = 0;
    while (!stop.load()) {
      const std::string name = "t.churn" + std::to_string(i % 7);
      obs::RegisterHealthProvider(
          name, [] { return std::string("{\"v\":1}"); });
      obs::UnregisterHealthProvider(name);
      ++i;
    }
  });
  for (int i = 0; i < 200; ++i) {
    std::string body, content_type;
    ASSERT_TRUE(
        obs::MetricsServer::RenderEndpoint("/healthz", &body, &content_type));
    EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);
  }
  stop.store(true);
  churner.join();
}

// ---------------------------------------------------------------------------
// Anomaly watch: EWMA z-score detectors with hysteresis over operational
// series, published as gauges and a /healthz component.

TEST(EwmaDetectorTest, LevelShiftRaisesAfterStreakAndSelfClears) {
  obs::AnomalyOptions opts;
  opts.alpha = 0.05;
  opts.z_enter = 3.0;
  opts.z_exit = 1.0;
  opts.enter_consecutive = 2;
  opts.exit_consecutive = 3;
  opts.warmup = 4;
  obs::EwmaDetector det(opts);
  // Flat baseline, then a level shift. One spiky sample is not enough — the
  // hysteresis wants enter_consecutive hits in a row.
  for (int i = 0; i < 6; ++i) EXPECT_FALSE(det.Observe(10.0));
  EXPECT_FALSE(det.Observe(100.0)) << "first hit only starts the streak";
  EXPECT_GE(std::abs(det.z()), opts.z_enter);
  EXPECT_TRUE(det.Observe(100.0)) << "second consecutive hit raises";
  EXPECT_EQ(det.trips(), 1);
  // Feeding the current mean gives z = 0 <= z_exit; exit_consecutive in a
  // row clears. The alarm cannot latch forever: the baseline keeps adapting.
  EXPECT_TRUE(det.Observe(det.mean()));
  EXPECT_TRUE(det.Observe(det.mean()));
  EXPECT_FALSE(det.Observe(det.mean()));
  EXPECT_EQ(det.trips(), 1) << "clearing is not a new trip";
}

TEST(EwmaDetectorTest, WarmupConstantsAndBrokenStreaksStayQuiet) {
  obs::AnomalyOptions opts;
  opts.z_enter = 3.0;
  opts.enter_consecutive = 2;
  opts.warmup = 8;
  // A wild outlier inside the warmup window is absorbed without judgement.
  obs::EwmaDetector young(opts);
  EXPECT_FALSE(young.Observe(10.0));
  EXPECT_FALSE(young.Observe(1e9));
  EXPECT_DOUBLE_EQ(young.z(), 0.0);
  // A constant series never alarms: min_sigma floors the variance.
  obs::EwmaDetector flat(opts);
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(flat.Observe(42.0));
  EXPECT_EQ(flat.trips(), 0);
  // spike, normal, spike never reaches enter_consecutive = 2.
  obs::AnomalyOptions strict = opts;
  strict.warmup = 2;
  strict.alpha = 0.001;  // baseline barely moves, spikes stay detectable
  obs::EwmaDetector gap(strict);
  EXPECT_FALSE(gap.Observe(10.0));
  EXPECT_FALSE(gap.Observe(10.0));
  EXPECT_FALSE(gap.Observe(100.0));  // streak 1
  EXPECT_FALSE(gap.Observe(10.0));   // streak broken
  EXPECT_FALSE(gap.Observe(100.0));  // streak 1 again, never 2
  EXPECT_EQ(gap.trips(), 0);
}

TEST(AnomalyWatchTest, ActiveSeriesPublishesGaugesAndHealthReason) {
  ResetObsState();
  auto& watch = obs::AnomalyWatch::Get();
  obs::AnomalyOptions opts;
  opts.alpha = 0.05;
  opts.z_enter = 3.0;
  opts.z_exit = 1.0;
  opts.enter_consecutive = 2;
  opts.exit_consecutive = 3;
  opts.warmup = 4;
  watch.Declare("t.depth", opts);
  for (int i = 0; i < 6; ++i) watch.Sample("t.depth", 10.0);
  watch.Sample("t.depth", 100.0);
  watch.Sample("t.depth", 100.0);  // second consecutive hit: active

  const auto states = watch.Snapshot();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0].series, "t.depth");
  EXPECT_TRUE(states[0].active);
  EXPECT_EQ(states[0].trips, 1);
  EXPECT_EQ(states[0].samples, 8);

  auto& registry = MetricsRegistry::Get();
  const MetricsRegistry::LabelSet labels{{"series", "t.depth"}};
  EXPECT_DOUBLE_EQ(registry.GetGauge("ses.anomaly.active", labels).Value(),
                   1.0);
  EXPECT_EQ(registry.GetCounter("ses.anomaly.trips", labels).Value(), 1);
  EXPECT_GE(registry.GetGauge("ses.anomaly.z", labels).Value(), opts.z_enter);

  // The /healthz component carries a structured reason while active …
  const std::string health = watch.HealthJson();
  EXPECT_NE(health.find("\"active_anomalies\":1"), std::string::npos);
  EXPECT_NE(health.find("\"t.depth\":{\"active\":true"), std::string::npos);
  EXPECT_NE(health.find("\"reason\":\"z="), std::string::npos);
  // … and is wired into the health registry under "anomaly_watch".
  bool registered = false;
  for (const auto& [name, json] : obs::CollectHealthComponents())
    if (name == "anomaly_watch") registered = (json == health);
  EXPECT_TRUE(registered);
}

TEST(AnomalyWatchTest, ProbesAreSampledOnPollAndMaySkip) {
  ResetObsState();
  auto& watch = obs::AnomalyWatch::Get();
  auto ticks = std::make_shared<int>(0);
  watch.WatchProbe("t.probe", [ticks](double* value) {
    ++*ticks;
    if (*ticks % 2 == 1) return false;  // odd polls: no new data, skip
    *value = 7.0;
    return true;
  });
  watch.PollProbes();  // skipped
  watch.PollProbes();  // sampled
  watch.PollProbes();  // skipped
  EXPECT_EQ(*ticks, 3);
  const auto states = watch.Snapshot();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0].samples, 1) << "a false probe must not feed the detector";
  EXPECT_DOUBLE_EQ(states[0].last, 7.0);
}

// ---------------------------------------------------------------------------
// Model health.

TEST(ModelHealthTest, DeadUnitsAreExactlyZeroColumns) {
  ResetObsState();
  auto& monitor = obs::ModelHealthMonitor::Get();
  monitor.SetEnabled(true);
  monitor.BeginEpoch("test");
  // Column 1 is dead (all exactly 0); column 0 has one live row; column 2 is
  // tiny-but-alive — magnitude must not matter, only exact zeros.
  const float acts[2][3] = {{0.0f, 0.0f, 1e-30f}, {2.0f, 0.0f, 0.0f}};
  monitor.ObserveActivations(&acts[0][0], 2, 3);
  const auto health = monitor.EndEpoch();
  EXPECT_DOUBLE_EQ(health.dead_fraction, 1.0 / 3.0);
  monitor.SetEnabled(false);
}

TEST(ModelHealthTest, AttentionEntropyIsOneForUniformZeroForOneHot) {
  ResetObsState();
  auto& monitor = obs::ModelHealthMonitor::Get();
  monitor.SetEnabled(true);

  monitor.BeginEpoch("test");
  const int64_t dst_uniform[4] = {0, 0, 0, 0};
  const float att_uniform[4] = {0.25f, 0.25f, 0.25f, 0.25f};
  monitor.ObserveAttention(att_uniform, dst_uniform, 4);
  EXPECT_NEAR(monitor.EndEpoch().attn_entropy, 1.0, 1e-9);

  monitor.BeginEpoch("test");
  const float att_onehot[4] = {1.0f, 0.0f, 0.0f, 0.0f};
  monitor.ObserveAttention(att_onehot, dst_uniform, 4);
  EXPECT_NEAR(monitor.EndEpoch().attn_entropy, 0.0, 1e-9);

  // Single-edge destinations carry no information and must be skipped.
  monitor.BeginEpoch("test");
  const int64_t dst_single[1] = {3};
  const float att_single[1] = {1.0f};
  monitor.ObserveAttention(att_single, dst_single, 1);
  EXPECT_DOUBLE_EQ(monitor.EndEpoch().attn_entropy, -1.0);
  monitor.SetEnabled(false);
}

TEST(ModelHealthTest, UpdateRatioAndGradNormComeFromTheSnapshots) {
  ResetObsState();
  auto& monitor = obs::ModelHealthMonitor::Get();
  monitor.SetEnabled(true);
  monitor.BeginEpoch("test");
  const float pre[2] = {3.0f, 4.0f};    // ||pre|| = 5
  const float grad[2] = {0.6f, 0.8f};   // ||grad|| = 1
  monitor.ObserveParamPreStep("w", pre, 2, grad, 2);
  const float post[2] = {3.0f, 3.0f};   // ||post - pre|| = 1
  monitor.ObserveParamPostStep("w", post, 2);
  const auto health = monitor.EndEpoch();
  ASSERT_EQ(health.params.size(), 1u);
  EXPECT_EQ(health.params[0].name, "w");
  EXPECT_NEAR(health.params[0].grad_norm, 1.0, 1e-6);
  EXPECT_NEAR(health.params[0].update_ratio, 1.0 / 5.0, 1e-6);
  monitor.SetEnabled(false);
}

TEST(ModuleTest, ParameterNamesFollowTheRegistrationTree) {
  util::Rng rng(1);
  nn::Mlp mlp({4, 8, 2}, &rng);
  const std::vector<std::string> names = mlp.ParameterNames();
  ASSERT_EQ(names.size(), mlp.Parameters().size());
  EXPECT_NE(std::find(names.begin(), names.end(), "fc0.weight"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "fc1.bias"), names.end());
}

// ---------------------------------------------------------------------------
// Registry thread-safety: scraping while new labeled series register. Run
// under TSan to turn latent races into failures.

TEST(MetricsRegistryTest, ScrapeWhileRegisteringIsSafe) {
  ResetObsState();
  auto& registry = MetricsRegistry::Get();
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load()) {
      std::ostringstream out;
      registry.WritePrometheus(out);
      std::ostringstream jsonl;
      registry.WriteJsonl(jsonl);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        registry
            .GetCounter("ses.test.hammer",
                        {{"thread", std::to_string(t)},
                         {"series", std::to_string(i)}})
            .Add(1);
        registry.GetHistogram("ses.test.hammer_hist",
                              {{"thread", std::to_string(t)}}, {1.0, 10.0})
            .Observe(static_cast<double>(i));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  scraper.join();

  std::ostringstream out;
  registry.WritePrometheus(out);
  EXPECT_NE(out.str().find("ses_test_hammer"), std::string::npos);
}

}  // namespace
