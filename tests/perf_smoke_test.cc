// Smoke tests for the inference fast path: tape-free forwards, the tensor
// workspace pool, and the InferenceSession artifact/logits caches.
#include <gtest/gtest.h>

#include "autograd/variable.h"
#include "core/inference_session.h"
#include "core/ses_model.h"
#include "data/synthetic.h"
#include "nn/feature_input.h"
#include "obs/metrics.h"
#include "tensor/workspace.h"
#include "util/rng.h"

namespace ag = ses::autograd;
namespace c = ses::core;
namespace t = ses::tensor;
namespace ws = ses::tensor::workspace;

namespace {

ses::data::Dataset TinyDataset(const std::string& name) {
  ses::data::SyntheticOptions opt;
  opt.scale = 0.25;
  return ses::data::MakeSyntheticByName(name, opt);
}

c::SesModel TrainTinyModel(const ses::data::Dataset& ds) {
  c::SesOptions opt;
  opt.backbone = "GCN";
  c::SesModel model(opt);
  ses::models::TrainConfig cfg;
  cfg.epochs = 4;
  cfg.hidden = 16;
  cfg.seed = 1;
  model.Fit(ds, cfg);
  return model;
}

/// The pre-pool tape path: a full taped eval forward, mirroring what
/// SesModel::Logits did before InferenceGuard existed.
t::Tensor TapedLogits(const c::SesModel& model, const ses::data::Dataset& ds) {
  ses::util::Rng rng(0);
  auto edges = ds.graph.DirectedEdges(/*add_self_loops=*/true);
  ses::nn::FeatureInput input =
      (model.options().use_feature_mask && model.feature_mask_nnz().size() > 0)
          ? ses::nn::FeatureInput::Sparse(
                ds.features, ag::Variable::Constant(model.feature_mask_nnz()))
          : ses::models::MakeInput(ds);
  ag::Variable adj_mask;
  if (model.options().use_structure_mask &&
      model.structure_mask_adj().size() > 0)
    adj_mask = ag::Variable::Constant(model.structure_mask_adj());
  return model.encoder()
      ->Forward(input, edges, adj_mask, 0.0f, /*training=*/false, &rng)
      .logits.value();
}

class PerfSmokeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PerfSmokeTest, SessionLogitsBitwiseMatchTapePath) {
  auto ds = TinyDataset(GetParam());
  auto model = TrainTinyModel(ds);
  const t::Tensor taped = TapedLogits(model, ds);

  c::InferenceSession session(&model, &ds);
  ws::Scope pool;
  // Cold query builds artifacts, warm query replays the memo — both must be
  // bitwise identical to the tape-building path.
  EXPECT_EQ(session.Logits().MaxAbsDiff(taped), 0.0f);
  EXPECT_EQ(session.Logits().MaxAbsDiff(taped), 0.0f);
  EXPECT_EQ(session.ForwardLogits().MaxAbsDiff(taped), 0.0f);
  const auto stats = session.stats();
  EXPECT_EQ(stats.cache_misses, 1);
  EXPECT_GE(stats.cache_hits, 1);
}

INSTANTIATE_TEST_SUITE_P(Datasets, PerfSmokeTest,
                         ::testing::Values("BAShapes", "Tree-Cycle"));

TEST(InferenceGuardTest, GuardedEvalForwardAllocatesNoTapeNodes) {
  auto ds = TinyDataset("BAShapes");
  auto model = TrainTinyModel(ds);

  // The taped path must create tape nodes...
  const uint64_t before_tape = ag::TapeNodesCreated();
  TapedLogits(model, ds);
  EXPECT_GT(ag::TapeNodesCreated(), before_tape);

  // ...and the same forward under the guard must create none.
  const uint64_t before_guarded = ag::TapeNodesCreated();
  {
    ag::InferenceGuard no_grad;
    TapedLogits(model, ds);
  }
  EXPECT_EQ(ag::TapeNodesCreated(), before_guarded);

  // Model eval entry points route through the guard themselves.
  const uint64_t before_eval = ag::TapeNodesCreated();
  model.Logits(ds);
  EXPECT_EQ(ag::TapeNodesCreated(), before_eval);
}

TEST(WorkspacePoolTest, WarmServingLoopHitsPool) {
  auto ds = TinyDataset("BAShapes");
  auto model = TrainTinyModel(ds);
  c::InferenceSession session(&model, &ds);

  ws::Scope pool;
  session.ForwardLogits();  // first pass populates every bucket
  ws::ResetStats();
  for (int i = 0; i < 10; ++i) session.ForwardLogits();
  const ws::Stats stats = ws::GlobalStats();
  ASSERT_GT(stats.hits + stats.misses, 0);
  const double hit_rate = static_cast<double>(stats.hits) /
                          static_cast<double>(stats.hits + stats.misses);
  EXPECT_GE(hit_rate, 0.9) << "hits=" << stats.hits
                           << " misses=" << stats.misses;
  EXPECT_GT(ws::ThreadBytesHeld(), 0);

  // Stats flow into the obs registry under the ses.pool.* names.
  auto& registry = ses::obs::MetricsRegistry::Get();
  registry.ResetForTest();
  ws::SyncMetricsRegistry();
  EXPECT_GT(registry.GetCounter("ses.pool.hits").Value(), 0);
  ws::Trim();
  EXPECT_EQ(ws::ThreadBytesHeld(), 0);
}

}  // namespace
