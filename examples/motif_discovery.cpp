// Motif discovery: the paper's headline explanation scenario. Train SES on
// BAShapes (a Barabasi-Albert graph with planted "house" motifs), then check
// that the learned structure mask separates the houses' internal edges from
// the surrounding noise — quantitatively (edge AUC against ground truth) and
// visually (an SVG of one house neighborhood with mask-weighted edges).
#include <cstdio>

#include "core/ses_model.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"
#include "util/table.h"
#include "viz/graph_export.h"

using namespace ses;

int main() {
  data::Dataset ds = data::MakeBaShapes();
  std::printf("BAShapes: %lld nodes, %lld edges, %zu ground-truth motif edges\n",
              static_cast<long long>(ds.num_nodes()),
              static_cast<long long>(ds.graph.num_edges()),
              ds.gt_motif_edges.size());

  core::SesOptions options;
  options.backbone = "GCN";
  core::SesModel model(options);
  models::TrainConfig config;
  config.epochs = 200;
  config.hidden = 64;
  config.dropout = 0.2f;
  config.seed = 3;
  model.Fit(ds, config);

  const double acc =
      models::Accuracy(model.Logits(ds), ds.labels, ds.test_idx);
  auto scores = model.EdgeScores(ds);
  const double auc = metrics::ExplanationAuc(ds, scores);
  std::printf("role-classification accuracy: %.1f%%\n", 100.0 * acc);
  std::printf("explanation AUC (motif edges vs incident noise): %.3f\n", auc);

  // Visualize one house: pick the first motif node, extract its 2-hop
  // neighborhood, overlay the mask weights.
  int64_t center = -1;
  for (int64_t i = 0; i < ds.num_nodes() && center < 0; ++i)
    if (ds.in_motif[static_cast<size_t>(i)]) center = i;
  graph::Subgraph sub = graph::ExtractEgoNet(ds.graph, center, 2);
  const auto& und = ds.graph.edges();
  std::vector<float> local;
  for (auto [la, lb] : sub.graph.edges()) {
    const int64_t ga = sub.nodes[static_cast<size_t>(la)];
    const int64_t gb = sub.nodes[static_cast<size_t>(lb)];
    auto key = std::make_pair(std::min(ga, gb), std::max(ga, gb));
    auto it = std::lower_bound(und.begin(), und.end(), key);
    local.push_back(it != und.end() && *it == key
                        ? scores[static_cast<size_t>(it - und.begin())]
                        : 0.0f);
  }
  util::WriteFile("motif_discovery_house.svg",
                  viz::SubgraphToSvg(sub, ds.labels, local, sub.center_local));
  std::printf("wrote motif_discovery_house.svg (darker edge = more important)\n");
  return 0;
}
