// Compare SES's built-in explanations against the post-hoc explainers on a
// Tree-Cycle benchmark: one trained backbone, four explanation methods, one
// table of edge-AUC scores and per-method timing. Demonstrates the
// Explainer interface the library exposes for plugging in new methods.
#include <cstdio>

#include "core/ses_model.h"
#include "data/synthetic.h"
#include "explain/gnn_explainer.h"
#include "explain/grad_att.h"
#include "explain/pg_explainer.h"
#include "explain/pgm_explainer.h"
#include "metrics/metrics.h"
#include "models/backbone_models.h"
#include "util/table.h"
#include "util/timer.h"

using namespace ses;

int main() {
  data::Dataset ds = data::MakeTreeCycle();
  models::TrainConfig config;
  config.epochs = 150;
  config.hidden = 64;
  config.dropout = 0.2f;
  config.seed = 5;

  // One trained GCN serves every post-hoc explainer.
  models::BackboneModel gcn("GCN");
  gcn.Fit(ds, config);
  std::printf("backbone GCN accuracy: %.1f%%\n",
              100.0 * models::Accuracy(gcn.Logits(ds), ds.labels, ds.test_idx));

  // Per-node methods explain the motif nodes (120 of them here).
  std::vector<int64_t> nodes = explain::NodesToExplain(ds, 120);

  util::Table table("Edge-explanation quality on Tree-Cycle");
  table.SetHeader({"Method", "AUC", "Time"});
  util::Timer timer;
  auto report = [&](const std::string& name, const std::vector<float>& scores) {
    table.AddRow({name,
                  util::Table::Num(metrics::ExplanationAuc(ds, scores), 3),
                  util::FormatDuration(timer.ElapsedSeconds())});
  };

  timer.Reset();
  explain::GradExplainer grad(gcn.encoder());
  report("GRAD", grad.ExplainEdges(ds));

  timer.Reset();
  explain::GnnExplainer gex(gcn.encoder());
  report("GNNExplainer", gex.ExplainEdges(ds, nodes));

  timer.Reset();
  explain::PgExplainer pge(gcn.encoder());
  report("PGExplainer", pge.ExplainEdges(ds));

  timer.Reset();
  explain::PgmExplainer pgm(gcn.encoder());
  report("PGMExplainer", pgm.ExplainEdges(ds, nodes));

  // SES trains its masks jointly — the timer covers training + readout.
  timer.Reset();
  core::SesOptions options;
  options.backbone = "GCN";
  core::SesModel ses(options);
  ses.Fit(ds, config);
  report("SES", ses.EdgeScores(ds));

  table.Print();
  return 0;
}
