// Quickstart: train SES on a small citation-style graph, predict node
// labels, and read both kinds of built-in explanations.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Observability (both optional; tracing is off and free by default):
//   ./build/examples/quickstart --trace-out=trace.json
//       writes a Chrome trace-event file with one span per autograd op,
//       layer, and training phase — open it in chrome://tracing
//   ./build/examples/quickstart --telemetry-out=epochs.jsonl
//       streams one JSON record (loss, grad-norm, wall-time) per epoch
//   ./build/examples/quickstart --metrics-out=metrics.jsonl
//       dumps the process-wide metrics registry (op counts, robustness
//       counters) on exit
//   ./build/examples/quickstart --metrics-port=9100
//       serves live Prometheus metrics on http://localhost:9100/metrics for
//       the whole run (plus /healthz and /spans); pass 0 for an ephemeral
//       port — watch training health gauges update with
//         watch -n1 'curl -s localhost:9100/metrics | grep ses.health'
//   ./build/examples/quickstart --flame-out=stacks.folded
//       writes folded stacks (one "a;b;c <self_ns>" line per call path) on
//       exit — render with `flamegraph.pl --countname ns stacks.folded`
//
// Any of the flags above also turns on per-kernel accounting, so the trace
// spans carry FLOP/byte/counter args and /metrics exposes the ses.kernel.*
// table (GFLOP/s, arithmetic intensity, IPC) — see DESIGN.md "Kernel
// observatory".
//
// Fault tolerance:
//   ./build/examples/quickstart --checkpoint-dir=ckpt --checkpoint-every=10
//       writes rotated, CRC-checked checkpoints; kill the process at any
//       point and re-run the same command — training resumes from the last
//       checkpoint and finishes bitwise-identically to an uninterrupted run
//   --max-grad-norm=5 enables global-norm gradient clipping, and
//   SES_FAULT_SPEC (env) injects NaNs / crashes / checkpoint corruption —
//   see DESIGN.md "Fault tolerance".
#include <cstdio>
#include <memory>

#include "core/ses_model.h"
#include "data/real_world.h"
#include "metrics/metrics.h"
#include "models/node_classifier.h"
#include "obs/obs.h"
#include "util/string_util.h"

using namespace ses;

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  const std::string trace_out = flags.GetString("trace-out", "");
  const std::string telemetry_out = flags.GetString("telemetry-out", "");
  const std::string metrics_out = flags.GetString("metrics-out", "");
  const std::string flame_out = flags.GetString("flame-out", "");
  const int64_t metrics_port = flags.GetInt("metrics-port", -1);
  // Flamegraphs are reconstructed from the span buffer, so --flame-out
  // implies tracing just like --trace-out does.
  if (!trace_out.empty() || !flame_out.empty()) obs::EnableTracing(true);
  if (!trace_out.empty() || !telemetry_out.empty() || !metrics_out.empty() ||
      !flame_out.empty() || metrics_port >= 0)
    obs::EnableKernelProfiling(true);
  if (!telemetry_out.empty()) {
    obs::Telemetry::Get().OpenJsonl(telemetry_out);
    // Per-epoch records carry model-health fields (per-layer gradient norms,
    // weight-update ratios, dead-ReLU fraction, attention entropy).
    obs::ModelHealthMonitor::Get().SetEnabled(true);
  }
  std::unique_ptr<obs::MetricsServer> metrics_server;
  if (metrics_port >= 0) {
    metrics_server = std::make_unique<obs::MetricsServer>();
    // A live scrape target needs the health gauges populated too.
    obs::ModelHealthMonitor::Get().SetEnabled(true);
    if (metrics_server->Start(static_cast<uint16_t>(metrics_port))) {
      std::printf("metrics server on http://localhost:%u/metrics\n",
                  static_cast<unsigned>(metrics_server->port()));
      // Flush so a watcher polling redirected output sees the port now.
      std::fflush(stdout);
    } else {
      metrics_server.reset();
    }
  }
  if (!trace_out.empty() || !metrics_out.empty()) {
    // A crashed run (SES_FAULT_SPEC, fatal signal) must still leave its
    // artifacts on disk. Register the robustness counters up front
    // (GetCounter is idempotent) so even an early-crash snapshot carries
    // them instead of coming out empty.
    auto& registry = obs::MetricsRegistry::Get();
    for (const char* counter :
         {"ses.ckpt.writes", "ses.ckpt.resume_ok", "ses.ckpt.resume_corrupt",
          "ses.train.nan_skips", "ses.train.rollbacks"})
      registry.GetCounter(counter);
    obs::SetCrashArtifacts(trace_out, metrics_out);
    obs::InstallCrashHandlers();
  }

  // 1. A dataset: a quarter-scale Cora-like citation network (graph +
  //    sparse bag-of-words features + labels + 60/20/20 split).
  data::Dataset ds = data::MakeRealWorldByName(
      "Cora", /*scale=*/flags.GetDouble("scale", 0.25), /*seed=*/7);
  std::printf("dataset: %s  nodes=%lld edges=%lld features=%lld classes=%lld\n",
              ds.name.c_str(), static_cast<long long>(ds.num_nodes()),
              static_cast<long long>(ds.graph.num_edges()),
              static_cast<long long>(ds.num_features()),
              static_cast<long long>(ds.num_classes));

  // 2. The model: SES with a GAT backbone (attention exercises the full op
  //    set — SpMM plus edge-softmax). Fit runs both phases — explainable
  //    training (encoder + mask generator, Eq. 9) and enhanced predictive
  //    learning (triplet + cross-entropy, Eq. 13).
  core::SesOptions options;
  options.backbone = "GAT";
  core::SesModel model(options);

  models::TrainConfig config;
  config.epochs = flags.GetInt("epochs", 80);
  config.hidden = 64;
  config.seed = 1;
  // Fault tolerance: periodic checkpoints (resume is automatic on re-run)
  // and optional gradient clipping.
  config.checkpoint_dir = flags.GetString("checkpoint-dir", "");
  config.checkpoint_every = flags.GetInt("checkpoint-every", 20);
  config.max_grad_norm =
      static_cast<float>(flags.GetDouble("max-grad-norm", 0.0));
  model.Fit(ds, config);

  // 3. Prediction.
  const double acc =
      models::Accuracy(model.Logits(ds), ds.labels, ds.test_idx);
  std::printf("test accuracy: %.1f%%  (phase1 %.1fs, phase2 %.1fs)\n",
              100.0 * acc, model.explainable_training_seconds(),
              model.enhanced_learning_seconds());

  // 4. Feature explanation E_feat = M_f ⊙ X: the most important features
  //    of the first test node.
  const int64_t node = ds.test_idx.front();
  const auto& mf = model.feature_mask_nnz();
  std::printf("node %lld (label %lld) — top features by mask weight:\n",
              static_cast<long long>(node),
              static_cast<long long>(ds.labels[static_cast<size_t>(node)]));
  const int64_t lo = ds.features->row_ptr[static_cast<size_t>(node)];
  const int64_t hi = ds.features->row_ptr[static_cast<size_t>(node) + 1];
  for (int64_t e = lo; e < hi && e < lo + 5; ++e)
    std::printf("  feature %lld  weight %.3f\n",
                static_cast<long long>(
                    ds.features->col_idx[static_cast<size_t>(e)]),
                mf[e]);

  // 5. Structure explanation E_sub = M̂_s ⊙ A^(k): the node's most
  //    important neighbors.
  auto edge_scores = model.EdgeScores(ds);
  std::printf("neighbors of node %lld by structure-mask weight:\n",
              static_cast<long long>(node));
  const auto& und = ds.graph.edges();
  int printed = 0;
  for (size_t i = 0; i < und.size() && printed < 5; ++i) {
    if (und[i].first != node && und[i].second != node) continue;
    const int64_t other = und[i].first == node ? und[i].second : und[i].first;
    std::printf("  neighbor %lld (label %lld)  weight %.3f\n",
                static_cast<long long>(other),
                static_cast<long long>(ds.labels[static_cast<size_t>(other)]),
                edge_scores[i]);
    ++printed;
  }

  // 6. Observability artifacts, when asked for on the command line.
  if (!trace_out.empty() && obs::WriteChromeTrace(trace_out))
    std::printf("chrome trace written to %s (open in chrome://tracing)\n",
                trace_out.c_str());
  if (!flame_out.empty() && obs::WriteFoldedStacks(flame_out))
    std::printf("folded stacks written to %s (flamegraph.pl --countname ns)\n",
                flame_out.c_str());
  if (!metrics_out.empty() &&
      obs::MetricsRegistry::Get().WriteSnapshot(metrics_out))
    std::printf("metrics snapshot written to %s\n", metrics_out.c_str());
  // 7. Robustness counters (nonzero when checkpointing is on or faults were
  //    injected via SES_FAULT_SPEC).
  auto& reg = obs::MetricsRegistry::Get();
  std::printf(
      "robustness: ckpt_writes=%lld resume_ok=%lld resume_corrupt=%lld "
      "nan_skips=%lld rollbacks=%lld\n",
      static_cast<long long>(reg.GetCounter("ses.ckpt.writes").Value()),
      static_cast<long long>(reg.GetCounter("ses.ckpt.resume_ok").Value()),
      static_cast<long long>(reg.GetCounter("ses.ckpt.resume_corrupt").Value()),
      static_cast<long long>(reg.GetCounter("ses.train.nan_skips").Value()),
      static_cast<long long>(reg.GetCounter("ses.train.rollbacks").Value()));
  if (metrics_server) metrics_server->Stop();
  obs::Telemetry::Get().Close();
  obs::ModelHealthMonitor::Get().SetEnabled(false);
  obs::SetCrashArtifacts("", "");
  return 0;
}
