# Empty compiler generated dependencies file for ses_explain.
# This may be replaced when dependencies are built.
