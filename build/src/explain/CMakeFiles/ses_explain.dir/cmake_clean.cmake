file(REMOVE_RECURSE
  "CMakeFiles/ses_explain.dir/explainer.cc.o"
  "CMakeFiles/ses_explain.dir/explainer.cc.o.d"
  "CMakeFiles/ses_explain.dir/gnn_explainer.cc.o"
  "CMakeFiles/ses_explain.dir/gnn_explainer.cc.o.d"
  "CMakeFiles/ses_explain.dir/grad_att.cc.o"
  "CMakeFiles/ses_explain.dir/grad_att.cc.o.d"
  "CMakeFiles/ses_explain.dir/graphlime.cc.o"
  "CMakeFiles/ses_explain.dir/graphlime.cc.o.d"
  "CMakeFiles/ses_explain.dir/pg_explainer.cc.o"
  "CMakeFiles/ses_explain.dir/pg_explainer.cc.o.d"
  "CMakeFiles/ses_explain.dir/pgm_explainer.cc.o"
  "CMakeFiles/ses_explain.dir/pgm_explainer.cc.o.d"
  "libses_explain.a"
  "libses_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ses_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
