
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/explain/explainer.cc" "src/explain/CMakeFiles/ses_explain.dir/explainer.cc.o" "gcc" "src/explain/CMakeFiles/ses_explain.dir/explainer.cc.o.d"
  "/root/repo/src/explain/gnn_explainer.cc" "src/explain/CMakeFiles/ses_explain.dir/gnn_explainer.cc.o" "gcc" "src/explain/CMakeFiles/ses_explain.dir/gnn_explainer.cc.o.d"
  "/root/repo/src/explain/grad_att.cc" "src/explain/CMakeFiles/ses_explain.dir/grad_att.cc.o" "gcc" "src/explain/CMakeFiles/ses_explain.dir/grad_att.cc.o.d"
  "/root/repo/src/explain/graphlime.cc" "src/explain/CMakeFiles/ses_explain.dir/graphlime.cc.o" "gcc" "src/explain/CMakeFiles/ses_explain.dir/graphlime.cc.o.d"
  "/root/repo/src/explain/pg_explainer.cc" "src/explain/CMakeFiles/ses_explain.dir/pg_explainer.cc.o" "gcc" "src/explain/CMakeFiles/ses_explain.dir/pg_explainer.cc.o.d"
  "/root/repo/src/explain/pgm_explainer.cc" "src/explain/CMakeFiles/ses_explain.dir/pgm_explainer.cc.o" "gcc" "src/explain/CMakeFiles/ses_explain.dir/pgm_explainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/ses_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ses_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ses_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ses_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ses_util.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/ses_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ses_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
