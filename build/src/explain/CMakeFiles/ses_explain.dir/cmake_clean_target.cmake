file(REMOVE_RECURSE
  "libses_explain.a"
)
