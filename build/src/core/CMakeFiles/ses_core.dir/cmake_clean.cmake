file(REMOVE_RECURSE
  "CMakeFiles/ses_core.dir/mask_generator.cc.o"
  "CMakeFiles/ses_core.dir/mask_generator.cc.o.d"
  "CMakeFiles/ses_core.dir/pairs.cc.o"
  "CMakeFiles/ses_core.dir/pairs.cc.o.d"
  "CMakeFiles/ses_core.dir/ses_model.cc.o"
  "CMakeFiles/ses_core.dir/ses_model.cc.o.d"
  "libses_core.a"
  "libses_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ses_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
