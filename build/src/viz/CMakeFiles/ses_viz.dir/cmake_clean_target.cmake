file(REMOVE_RECURSE
  "libses_viz.a"
)
