# Empty dependencies file for ses_viz.
# This may be replaced when dependencies are built.
