file(REMOVE_RECURSE
  "CMakeFiles/ses_viz.dir/graph_export.cc.o"
  "CMakeFiles/ses_viz.dir/graph_export.cc.o.d"
  "CMakeFiles/ses_viz.dir/tsne.cc.o"
  "CMakeFiles/ses_viz.dir/tsne.cc.o.d"
  "libses_viz.a"
  "libses_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ses_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
