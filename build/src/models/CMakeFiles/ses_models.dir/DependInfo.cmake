
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/asdgn.cc" "src/models/CMakeFiles/ses_models.dir/asdgn.cc.o" "gcc" "src/models/CMakeFiles/ses_models.dir/asdgn.cc.o.d"
  "/root/repo/src/models/backbone_models.cc" "src/models/CMakeFiles/ses_models.dir/backbone_models.cc.o" "gcc" "src/models/CMakeFiles/ses_models.dir/backbone_models.cc.o.d"
  "/root/repo/src/models/encoders.cc" "src/models/CMakeFiles/ses_models.dir/encoders.cc.o" "gcc" "src/models/CMakeFiles/ses_models.dir/encoders.cc.o.d"
  "/root/repo/src/models/node_classifier.cc" "src/models/CMakeFiles/ses_models.dir/node_classifier.cc.o" "gcc" "src/models/CMakeFiles/ses_models.dir/node_classifier.cc.o.d"
  "/root/repo/src/models/protgnn.cc" "src/models/CMakeFiles/ses_models.dir/protgnn.cc.o" "gcc" "src/models/CMakeFiles/ses_models.dir/protgnn.cc.o.d"
  "/root/repo/src/models/segnn.cc" "src/models/CMakeFiles/ses_models.dir/segnn.cc.o" "gcc" "src/models/CMakeFiles/ses_models.dir/segnn.cc.o.d"
  "/root/repo/src/models/unimp.cc" "src/models/CMakeFiles/ses_models.dir/unimp.cc.o" "gcc" "src/models/CMakeFiles/ses_models.dir/unimp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/ses_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ses_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ses_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ses_util.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/ses_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ses_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
