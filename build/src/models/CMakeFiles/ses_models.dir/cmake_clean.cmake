file(REMOVE_RECURSE
  "CMakeFiles/ses_models.dir/asdgn.cc.o"
  "CMakeFiles/ses_models.dir/asdgn.cc.o.d"
  "CMakeFiles/ses_models.dir/backbone_models.cc.o"
  "CMakeFiles/ses_models.dir/backbone_models.cc.o.d"
  "CMakeFiles/ses_models.dir/encoders.cc.o"
  "CMakeFiles/ses_models.dir/encoders.cc.o.d"
  "CMakeFiles/ses_models.dir/node_classifier.cc.o"
  "CMakeFiles/ses_models.dir/node_classifier.cc.o.d"
  "CMakeFiles/ses_models.dir/protgnn.cc.o"
  "CMakeFiles/ses_models.dir/protgnn.cc.o.d"
  "CMakeFiles/ses_models.dir/segnn.cc.o"
  "CMakeFiles/ses_models.dir/segnn.cc.o.d"
  "CMakeFiles/ses_models.dir/unimp.cc.o"
  "CMakeFiles/ses_models.dir/unimp.cc.o.d"
  "libses_models.a"
  "libses_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ses_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
