# Empty compiler generated dependencies file for ses_models.
# This may be replaced when dependencies are built.
