file(REMOVE_RECURSE
  "libses_models.a"
)
