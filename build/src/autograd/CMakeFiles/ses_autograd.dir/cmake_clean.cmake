file(REMOVE_RECURSE
  "CMakeFiles/ses_autograd.dir/grad_check.cc.o"
  "CMakeFiles/ses_autograd.dir/grad_check.cc.o.d"
  "CMakeFiles/ses_autograd.dir/ops.cc.o"
  "CMakeFiles/ses_autograd.dir/ops.cc.o.d"
  "CMakeFiles/ses_autograd.dir/sparse_ops.cc.o"
  "CMakeFiles/ses_autograd.dir/sparse_ops.cc.o.d"
  "CMakeFiles/ses_autograd.dir/variable.cc.o"
  "CMakeFiles/ses_autograd.dir/variable.cc.o.d"
  "libses_autograd.a"
  "libses_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ses_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
