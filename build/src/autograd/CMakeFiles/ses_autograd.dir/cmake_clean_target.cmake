file(REMOVE_RECURSE
  "libses_autograd.a"
)
