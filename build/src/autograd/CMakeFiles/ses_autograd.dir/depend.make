# Empty dependencies file for ses_autograd.
# This may be replaced when dependencies are built.
