file(REMOVE_RECURSE
  "CMakeFiles/ses_graph.dir/graph.cc.o"
  "CMakeFiles/ses_graph.dir/graph.cc.o.d"
  "CMakeFiles/ses_graph.dir/khop.cc.o"
  "CMakeFiles/ses_graph.dir/khop.cc.o.d"
  "CMakeFiles/ses_graph.dir/sampling.cc.o"
  "CMakeFiles/ses_graph.dir/sampling.cc.o.d"
  "libses_graph.a"
  "libses_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ses_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
