# Empty compiler generated dependencies file for ses_graph.
# This may be replaced when dependencies are built.
