file(REMOVE_RECURSE
  "libses_graph.a"
)
