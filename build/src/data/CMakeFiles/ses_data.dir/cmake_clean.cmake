file(REMOVE_RECURSE
  "CMakeFiles/ses_data.dir/dataset.cc.o"
  "CMakeFiles/ses_data.dir/dataset.cc.o.d"
  "CMakeFiles/ses_data.dir/real_world.cc.o"
  "CMakeFiles/ses_data.dir/real_world.cc.o.d"
  "CMakeFiles/ses_data.dir/synthetic.cc.o"
  "CMakeFiles/ses_data.dir/synthetic.cc.o.d"
  "libses_data.a"
  "libses_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ses_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
