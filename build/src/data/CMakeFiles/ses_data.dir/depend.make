# Empty dependencies file for ses_data.
# This may be replaced when dependencies are built.
