file(REMOVE_RECURSE
  "libses_data.a"
)
