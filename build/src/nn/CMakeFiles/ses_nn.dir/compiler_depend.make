# Empty compiler generated dependencies file for ses_nn.
# This may be replaced when dependencies are built.
