file(REMOVE_RECURSE
  "CMakeFiles/ses_nn.dir/gat_conv.cc.o"
  "CMakeFiles/ses_nn.dir/gat_conv.cc.o.d"
  "CMakeFiles/ses_nn.dir/gcn_conv.cc.o"
  "CMakeFiles/ses_nn.dir/gcn_conv.cc.o.d"
  "CMakeFiles/ses_nn.dir/linear.cc.o"
  "CMakeFiles/ses_nn.dir/linear.cc.o.d"
  "CMakeFiles/ses_nn.dir/module.cc.o"
  "CMakeFiles/ses_nn.dir/module.cc.o.d"
  "CMakeFiles/ses_nn.dir/optim.cc.o"
  "CMakeFiles/ses_nn.dir/optim.cc.o.d"
  "libses_nn.a"
  "libses_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ses_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
