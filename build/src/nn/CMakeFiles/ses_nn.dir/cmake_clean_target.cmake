file(REMOVE_RECURSE
  "libses_nn.a"
)
