
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/gat_conv.cc" "src/nn/CMakeFiles/ses_nn.dir/gat_conv.cc.o" "gcc" "src/nn/CMakeFiles/ses_nn.dir/gat_conv.cc.o.d"
  "/root/repo/src/nn/gcn_conv.cc" "src/nn/CMakeFiles/ses_nn.dir/gcn_conv.cc.o" "gcc" "src/nn/CMakeFiles/ses_nn.dir/gcn_conv.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/ses_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/ses_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/ses_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/ses_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/optim.cc" "src/nn/CMakeFiles/ses_nn.dir/optim.cc.o" "gcc" "src/nn/CMakeFiles/ses_nn.dir/optim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/ses_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ses_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ses_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ses_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
