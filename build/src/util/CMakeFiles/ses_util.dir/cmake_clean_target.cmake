file(REMOVE_RECURSE
  "libses_util.a"
)
