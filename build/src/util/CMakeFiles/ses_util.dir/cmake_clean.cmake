file(REMOVE_RECURSE
  "CMakeFiles/ses_util.dir/logging.cc.o"
  "CMakeFiles/ses_util.dir/logging.cc.o.d"
  "CMakeFiles/ses_util.dir/rng.cc.o"
  "CMakeFiles/ses_util.dir/rng.cc.o.d"
  "CMakeFiles/ses_util.dir/string_util.cc.o"
  "CMakeFiles/ses_util.dir/string_util.cc.o.d"
  "CMakeFiles/ses_util.dir/table.cc.o"
  "CMakeFiles/ses_util.dir/table.cc.o.d"
  "CMakeFiles/ses_util.dir/timer.cc.o"
  "CMakeFiles/ses_util.dir/timer.cc.o.d"
  "libses_util.a"
  "libses_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ses_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
