# Empty dependencies file for ses_util.
# This may be replaced when dependencies are built.
