# Empty compiler generated dependencies file for ses_tensor.
# This may be replaced when dependencies are built.
