file(REMOVE_RECURSE
  "libses_tensor.a"
)
