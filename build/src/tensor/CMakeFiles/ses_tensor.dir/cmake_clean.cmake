file(REMOVE_RECURSE
  "CMakeFiles/ses_tensor.dir/ops.cc.o"
  "CMakeFiles/ses_tensor.dir/ops.cc.o.d"
  "CMakeFiles/ses_tensor.dir/sparse.cc.o"
  "CMakeFiles/ses_tensor.dir/sparse.cc.o.d"
  "CMakeFiles/ses_tensor.dir/tensor.cc.o"
  "CMakeFiles/ses_tensor.dir/tensor.cc.o.d"
  "libses_tensor.a"
  "libses_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ses_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
