file(REMOVE_RECURSE
  "CMakeFiles/motif_discovery.dir/motif_discovery.cpp.o"
  "CMakeFiles/motif_discovery.dir/motif_discovery.cpp.o.d"
  "motif_discovery"
  "motif_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motif_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
