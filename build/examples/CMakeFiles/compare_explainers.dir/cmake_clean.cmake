file(REMOVE_RECURSE
  "CMakeFiles/compare_explainers.dir/compare_explainers.cpp.o"
  "CMakeFiles/compare_explainers.dir/compare_explainers.cpp.o.d"
  "compare_explainers"
  "compare_explainers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_explainers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
