# Empty compiler generated dependencies file for compare_explainers.
# This may be replaced when dependencies are built.
