file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_explanation_auc.dir/bench_table4_explanation_auc.cc.o"
  "CMakeFiles/bench_table4_explanation_auc.dir/bench_table4_explanation_auc.cc.o.d"
  "bench_table4_explanation_auc"
  "bench_table4_explanation_auc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_explanation_auc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
