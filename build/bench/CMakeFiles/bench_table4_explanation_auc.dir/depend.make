# Empty dependencies file for bench_table4_explanation_auc.
# This may be replaced when dependencies are built.
