# Empty compiler generated dependencies file for bench_fig6_subgraph_viz.
# This may be replaced when dependencies are built.
