file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_fidelity.dir/bench_table5_fidelity.cc.o"
  "CMakeFiles/bench_table5_fidelity.dir/bench_table5_fidelity.cc.o.d"
  "bench_table5_fidelity"
  "bench_table5_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
