# Empty dependencies file for bench_table5_fidelity.
# This may be replaced when dependencies are built.
