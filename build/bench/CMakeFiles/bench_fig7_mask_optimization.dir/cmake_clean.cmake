file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_mask_optimization.dir/bench_fig7_mask_optimization.cc.o"
  "CMakeFiles/bench_fig7_mask_optimization.dir/bench_fig7_mask_optimization.cc.o.d"
  "bench_fig7_mask_optimization"
  "bench_fig7_mask_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_mask_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
