# Empty compiler generated dependencies file for bench_fig7_mask_optimization.
# This may be replaced when dependencies are built.
