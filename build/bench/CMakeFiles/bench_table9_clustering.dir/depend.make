# Empty dependencies file for bench_table9_clustering.
# This may be replaced when dependencies are built.
