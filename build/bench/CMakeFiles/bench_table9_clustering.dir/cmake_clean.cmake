file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_clustering.dir/bench_table9_clustering.cc.o"
  "CMakeFiles/bench_table9_clustering.dir/bench_table9_clustering.cc.o.d"
  "bench_table9_clustering"
  "bench_table9_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
