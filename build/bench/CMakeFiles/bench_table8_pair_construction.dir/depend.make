# Empty dependencies file for bench_table8_pair_construction.
# This may be replaced when dependencies are built.
