
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/models_test.cc" "tests/CMakeFiles/models_test.dir/models_test.cc.o" "gcc" "tests/CMakeFiles/models_test.dir/models_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/explain/CMakeFiles/ses_explain.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ses_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ses_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/ses_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ses_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/ses_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ses_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ses_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/ses_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ses_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ses_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
